//! Multi-level page tables with mixed 4 KB / 2 MB leaves.
//!
//! The paper's Figure 2 walks through the Linux page-table organisation
//! (PGD → PMD → PTE page frames → data frame) and observes that translating
//! a virtual address costs one memory reference *per level*, which is what
//! the TLB exists to avoid. We model the x86-64 long-mode radix tree the
//! evaluation platforms actually used: four levels of 512 eight-byte
//! entries (PML4 → PDPT → PD → PT), where a 2 MB mapping terminates one
//! level early with a leaf in the page directory. That "one level shorter"
//! walk — and the 512× fewer leaf entries — is the entire mechanism behind
//! the paper's DTLB-miss reductions, so it is modelled structurally rather
//! than as a constant.
//!
//! Every table node is given a physical frame from the buddy allocator, so
//! a [`WalkTrace`] can report the exact physical addresses a hardware page
//! walker would touch; the machine model charges those to the cache
//! hierarchy (walks hit in L2 quite often in practice, which the paper's
//! cycle numbers implicitly include).

use crate::addr::{PageSize, PhysAddr, VirtAddr};
use crate::error::{VmError, VmResult};
use crate::frame::BuddyAllocator;

/// Number of entries in one table node (9 address bits per level).
pub const ENTRIES_PER_TABLE: usize = 512;
/// Bytes of one page-table entry.
pub const PTE_BYTES: u64 = 8;
/// Number of radix levels (x86-64 long mode: PML4, PDPT, PD, PT).
pub const LEVELS: u8 = 4;
/// Level at which a 2 MB leaf terminates the walk (the page directory).
pub const LARGE_LEAF_LEVEL: u8 = 1;

/// Protection and status bits of a mapping, modelled after x86 PTE flags.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct PteFlags {
    /// Mapping is valid.
    pub present: bool,
    /// Writes permitted.
    pub writable: bool,
    /// Instruction fetches permitted (inverse of NX).
    pub executable: bool,
    /// Set by the walker on any access.
    pub accessed: bool,
    /// Set by the walker on a write.
    pub dirty: bool,
}

impl PteFlags {
    /// Read/write data mapping.
    pub const fn rw() -> Self {
        PteFlags {
            present: true,
            writable: true,
            executable: false,
            accessed: false,
            dirty: false,
        }
    }

    /// Read-only data mapping.
    pub const fn ro() -> Self {
        PteFlags {
            present: true,
            writable: false,
            executable: false,
            accessed: false,
            dirty: false,
        }
    }

    /// Executable (code) mapping.
    pub const fn rx() -> Self {
        PteFlags {
            present: true,
            writable: false,
            executable: true,
            accessed: false,
            dirty: false,
        }
    }
}

/// One entry of a table node.
#[derive(Debug, Default)]
enum Entry {
    /// Nothing mapped below this entry.
    #[default]
    None,
    /// Pointer to the next-level table node.
    Table(Box<Node>),
    /// Terminal mapping (4 KB at level 0, 2 MB at level 1).
    Leaf { pa: PhysAddr, flags: PteFlags },
}

/// A single 4 KB table node holding 512 entries.
#[derive(Debug)]
struct Node {
    /// Physical frame backing this node (for walk-cost accounting).
    frame: PhysAddr,
    entries: Box<[Entry; ENTRIES_PER_TABLE]>,
    /// Number of non-`None` entries, for reclamation.
    live: u16,
}

impl Node {
    fn new(frame: PhysAddr) -> Self {
        Node {
            frame,
            entries: Box::new(std::array::from_fn(|_| Entry::None)),
            live: 0,
        }
    }
}

/// The kind of access being translated; used for permission checks and for
/// setting accessed/dirty bits.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AccessKind {
    /// Data load.
    Read,
    /// Data store.
    Write,
    /// Instruction fetch.
    Fetch,
}

/// The result of a successful page walk.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Translation {
    /// Translated physical address (frame base + offset).
    pub pa: PhysAddr,
    /// Page size of the terminal mapping.
    pub size: PageSize,
    /// Flags of the terminal mapping.
    pub flags: PteFlags,
}

/// Physical addresses of the page-table entries a hardware walker reads,
/// root first. A 4 KB walk has [`LEVELS`] steps; a 2 MB walk has one fewer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WalkTrace {
    steps: [PhysAddr; LEVELS as usize],
    len: u8,
}

impl WalkTrace {
    fn new() -> Self {
        WalkTrace {
            steps: [PhysAddr(0); LEVELS as usize],
            len: 0,
        }
    }

    fn push(&mut self, pa: PhysAddr) {
        self.steps[self.len as usize] = pa;
        self.len += 1;
    }

    /// Entries touched, root first.
    pub fn steps(&self) -> &[PhysAddr] {
        &self.steps[..self.len as usize]
    }

    /// Number of memory references the walk performed.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// True when the walk touched no memory (never the case for real walks).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// Counters maintained by a page table.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PageTableStats {
    /// Live 4 KB mappings.
    pub small_mappings: u64,
    /// Live 2 MB mappings.
    pub large_mappings: u64,
    /// Table nodes currently allocated (including the root).
    pub nodes: u64,
    /// Total walks performed via [`PageTable::walk`].
    pub walks: u64,
}

/// A per-address-space radix page table.
#[derive(Debug)]
pub struct PageTable {
    root: Node,
    stats: PageTableStats,
}

impl PageTable {
    /// Create an empty page table, drawing the root node's frame from
    /// `frames`.
    pub fn new(frames: &mut BuddyAllocator) -> VmResult<Self> {
        let frame = frames.alloc(0)?;
        Ok(PageTable {
            root: Node::new(frame),
            stats: PageTableStats {
                nodes: 1,
                ..Default::default()
            },
        })
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> PageTableStats {
        self.stats
    }

    /// Memory consumed by table nodes themselves, in bytes. Large-page
    /// mappings need dramatically fewer nodes — one of the secondary
    /// benefits of 2 MB pages.
    pub fn table_bytes(&self) -> u64 {
        self.stats.nodes * crate::addr::SMALL_PAGE_BYTES
    }

    /// Map the page containing `va` to the frame at `pa` with the given
    /// size and flags. Both addresses must be size-aligned.
    pub fn map(
        &mut self,
        frames: &mut BuddyAllocator,
        va: VirtAddr,
        pa: PhysAddr,
        size: PageSize,
        flags: PteFlags,
    ) -> VmResult<()> {
        if !va.is_aligned(size) {
            return Err(VmError::Misaligned { addr: va, size });
        }
        if pa.0 & size.offset_mask() != 0 {
            return Err(VmError::Misaligned {
                addr: VirtAddr(pa.0),
                size,
            });
        }
        let leaf_level = match size {
            PageSize::Small4K => 0,
            PageSize::Large2M => LARGE_LEAF_LEVEL,
        };
        let mut node = &mut self.root;
        let mut level = LEVELS - 1;
        while level > leaf_level {
            let idx = va.pt_index(level);
            // Descend, creating intermediate nodes as needed.
            let entry = &mut node.entries[idx];
            match entry {
                Entry::None => {
                    let frame = frames.alloc(0)?;
                    *entry = Entry::Table(Box::new(Node::new(frame)));
                    node.live += 1;
                    self.stats.nodes += 1;
                }
                Entry::Table(_) => {}
                Entry::Leaf { .. } => return Err(VmError::AlreadyMapped(va)),
            }
            node = match &mut node.entries[idx] {
                Entry::Table(t) => t,
                _ => unreachable!("just ensured a table entry"),
            };
            level -= 1;
        }
        let idx = va.pt_index(leaf_level);
        // A 2 MB mapping may land where an (empty) page-table node sits —
        // e.g. after THP promotion unmapped the 512 small pages. Reclaim
        // the empty node and take its slot.
        if size == PageSize::Large2M {
            if let Entry::Table(t) = &node.entries[idx] {
                if t.live == 0 {
                    let freed = t.frame;
                    node.entries[idx] = Entry::None;
                    node.live -= 1;
                    frames.free(freed, 0);
                    self.stats.nodes -= 1;
                }
            }
        }
        match &node.entries[idx] {
            Entry::None => {
                node.entries[idx] = Entry::Leaf { pa, flags };
                node.live += 1;
                match size {
                    PageSize::Small4K => self.stats.small_mappings += 1,
                    PageSize::Large2M => self.stats.large_mappings += 1,
                }
                Ok(())
            }
            _ => Err(VmError::AlreadyMapped(va)),
        }
    }

    /// Remove the mapping for the page containing `va`. Returns the old
    /// translation. Empty intermediate nodes are *not* eagerly reclaimed
    /// (as in Linux, where PGD/PMD frames persist until exit).
    pub fn unmap(&mut self, va: VirtAddr, size: PageSize) -> VmResult<Translation> {
        let leaf_level = match size {
            PageSize::Small4K => 0,
            PageSize::Large2M => LARGE_LEAF_LEVEL,
        };
        let mut node = &mut self.root;
        let mut level = LEVELS - 1;
        while level > leaf_level {
            let idx = va.pt_index(level);
            node = match &mut node.entries[idx] {
                Entry::Table(t) => t,
                _ => return Err(VmError::NotMapped(va)),
            };
            level -= 1;
        }
        let idx = va.pt_index(leaf_level);
        match std::mem::take(&mut node.entries[idx]) {
            Entry::Leaf { pa, flags } => {
                node.live -= 1;
                match size {
                    PageSize::Small4K => self.stats.small_mappings -= 1,
                    PageSize::Large2M => self.stats.large_mappings -= 1,
                }
                Ok(Translation { pa, size, flags })
            }
            other => {
                node.entries[idx] = other;
                Err(VmError::NotMapped(va))
            }
        }
    }

    /// Update the flags of an existing leaf mapping (mprotect path).
    /// Returns the page size of the mapping.
    pub fn protect(&mut self, va: VirtAddr, new_flags: PteFlags) -> VmResult<PageSize> {
        let mut node = &mut self.root;
        let mut level = LEVELS - 1;
        loop {
            let idx = va.pt_index(level);
            match &mut node.entries[idx] {
                Entry::None => return Err(VmError::NotMapped(va)),
                Entry::Leaf { flags, .. } => {
                    *flags = new_flags;
                    return Ok(if level == 0 {
                        PageSize::Small4K
                    } else {
                        PageSize::Large2M
                    });
                }
                Entry::Table(t) => {
                    if level == 0 {
                        return Err(VmError::NotMapped(va));
                    }
                    node = t;
                    level -= 1;
                }
            }
        }
    }

    /// Translate `va` without permission checks or A/D updates (a "probe").
    pub fn probe(&self, va: VirtAddr) -> Option<Translation> {
        let mut node = &self.root;
        let mut level = LEVELS - 1;
        loop {
            let idx = va.pt_index(level);
            match &node.entries[idx] {
                Entry::None => return None,
                Entry::Leaf { pa, flags } => {
                    let size = if level == 0 {
                        PageSize::Small4K
                    } else {
                        PageSize::Large2M
                    };
                    return Some(Translation {
                        pa: pa.add(va.page_offset(size)),
                        size,
                        flags: *flags,
                    });
                }
                Entry::Table(t) => {
                    if level == 0 {
                        return None;
                    }
                    node = t;
                    level -= 1;
                }
            }
        }
    }

    /// Perform a full hardware-style walk for an access of kind `kind`,
    /// recording every table entry touched, enforcing permissions, and
    /// updating accessed/dirty bits.
    pub fn walk(&mut self, va: VirtAddr, kind: AccessKind) -> VmResult<(Translation, WalkTrace)> {
        self.stats.walks += 1;
        let mut trace = WalkTrace::new();
        let mut node = &mut self.root;
        let mut level = LEVELS - 1;
        loop {
            let idx = va.pt_index(level);
            trace.push(node.frame.add(idx as u64 * PTE_BYTES));
            match &mut node.entries[idx] {
                Entry::None => return Err(VmError::NotMapped(va)),
                Entry::Leaf { pa, flags } => {
                    let ok = match kind {
                        AccessKind::Read => flags.present,
                        AccessKind::Write => flags.present && flags.writable,
                        AccessKind::Fetch => flags.present && flags.executable,
                    };
                    if !ok {
                        return Err(VmError::ProtectionViolation(va));
                    }
                    flags.accessed = true;
                    if kind == AccessKind::Write {
                        flags.dirty = true;
                    }
                    let size = if level == 0 {
                        PageSize::Small4K
                    } else {
                        PageSize::Large2M
                    };
                    let t = Translation {
                        pa: pa.add(va.page_offset(size)),
                        size,
                        flags: *flags,
                    };
                    return Ok((t, trace));
                }
                Entry::Table(t) => {
                    if level == 0 {
                        return Err(VmError::NotMapped(va));
                    }
                    node = t;
                    level -= 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixture() -> (BuddyAllocator, PageTable) {
        let mut frames = BuddyAllocator::new(64 * 1024 * 1024);
        let pt = PageTable::new(&mut frames).unwrap();
        (frames, pt)
    }

    #[test]
    fn map_and_translate_small() {
        let (mut frames, mut pt) = fixture();
        let frame = frames.alloc(0).unwrap();
        pt.map(
            &mut frames,
            VirtAddr(0x40_0000),
            frame,
            PageSize::Small4K,
            PteFlags::rw(),
        )
        .unwrap();
        let t = pt.probe(VirtAddr(0x40_0123)).unwrap();
        assert_eq!(t.pa, frame.add(0x123));
        assert_eq!(t.size, PageSize::Small4K);
    }

    #[test]
    fn map_and_translate_large() {
        let (mut frames, mut pt) = fixture();
        let frame = frames.alloc(PageSize::Large2M.buddy_order()).unwrap();
        pt.map(
            &mut frames,
            VirtAddr(0x20_0000),
            frame,
            PageSize::Large2M,
            PteFlags::rw(),
        )
        .unwrap();
        let t = pt.probe(VirtAddr(0x20_0000 + 0x12_345)).unwrap();
        assert_eq!(t.pa, frame.add(0x12_345));
        assert_eq!(t.size, PageSize::Large2M);
    }

    #[test]
    fn walk_lengths_differ_by_page_size() {
        let (mut frames, mut pt) = fixture();
        let f4 = frames.alloc(0).unwrap();
        let f2m = frames.alloc(PageSize::Large2M.buddy_order()).unwrap();
        pt.map(
            &mut frames,
            VirtAddr(0x1000),
            f4,
            PageSize::Small4K,
            PteFlags::rw(),
        )
        .unwrap();
        pt.map(
            &mut frames,
            VirtAddr(0x4000_0000),
            f2m,
            PageSize::Large2M,
            PteFlags::rw(),
        )
        .unwrap();
        let (_, small_trace) = pt.walk(VirtAddr(0x1000), AccessKind::Read).unwrap();
        let (_, large_trace) = pt.walk(VirtAddr(0x4000_0000), AccessKind::Read).unwrap();
        assert_eq!(small_trace.len(), LEVELS as usize);
        assert_eq!(large_trace.len(), LEVELS as usize - 1);
    }

    #[test]
    fn walk_sets_accessed_and_dirty() {
        let (mut frames, mut pt) = fixture();
        let f = frames.alloc(0).unwrap();
        pt.map(
            &mut frames,
            VirtAddr(0x1000),
            f,
            PageSize::Small4K,
            PteFlags::rw(),
        )
        .unwrap();
        let (t, _) = pt.walk(VirtAddr(0x1000), AccessKind::Read).unwrap();
        assert!(t.flags.accessed);
        assert!(!t.flags.dirty);
        let (t, _) = pt.walk(VirtAddr(0x1000), AccessKind::Write).unwrap();
        assert!(t.flags.dirty);
    }

    #[test]
    fn permission_enforcement() {
        let (mut frames, mut pt) = fixture();
        let f = frames.alloc(0).unwrap();
        pt.map(
            &mut frames,
            VirtAddr(0x1000),
            f,
            PageSize::Small4K,
            PteFlags::ro(),
        )
        .unwrap();
        assert!(pt.walk(VirtAddr(0x1000), AccessKind::Read).is_ok());
        assert_eq!(
            pt.walk(VirtAddr(0x1000), AccessKind::Write),
            Err(VmError::ProtectionViolation(VirtAddr(0x1000)))
        );
        assert_eq!(
            pt.walk(VirtAddr(0x1000), AccessKind::Fetch),
            Err(VmError::ProtectionViolation(VirtAddr(0x1000)))
        );
    }

    #[test]
    fn double_map_rejected() {
        let (mut frames, mut pt) = fixture();
        let f = frames.alloc(0).unwrap();
        pt.map(
            &mut frames,
            VirtAddr(0x1000),
            f,
            PageSize::Small4K,
            PteFlags::rw(),
        )
        .unwrap();
        let f2 = frames.alloc(0).unwrap();
        assert_eq!(
            pt.map(
                &mut frames,
                VirtAddr(0x1000),
                f2,
                PageSize::Small4K,
                PteFlags::rw()
            ),
            Err(VmError::AlreadyMapped(VirtAddr(0x1000)))
        );
    }

    #[test]
    fn unmap_removes_translation() {
        let (mut frames, mut pt) = fixture();
        let f = frames.alloc(0).unwrap();
        pt.map(
            &mut frames,
            VirtAddr(0x1000),
            f,
            PageSize::Small4K,
            PteFlags::rw(),
        )
        .unwrap();
        let t = pt.unmap(VirtAddr(0x1000), PageSize::Small4K).unwrap();
        assert_eq!(t.pa, f);
        assert!(pt.probe(VirtAddr(0x1000)).is_none());
        assert_eq!(
            pt.unmap(VirtAddr(0x1000), PageSize::Small4K),
            Err(VmError::NotMapped(VirtAddr(0x1000)))
        );
    }

    #[test]
    fn misaligned_map_rejected() {
        let (mut frames, mut pt) = fixture();
        let f = frames.alloc(PageSize::Large2M.buddy_order()).unwrap();
        assert!(matches!(
            pt.map(
                &mut frames,
                VirtAddr(0x1000),
                f,
                PageSize::Large2M,
                PteFlags::rw()
            ),
            Err(VmError::Misaligned { .. })
        ));
    }

    #[test]
    fn node_count_grows_much_slower_for_large_pages() {
        // Map 64 MB with 4 KB pages vs 2 MB pages and compare table overhead.
        let mut frames = BuddyAllocator::new(512 * 1024 * 1024);
        let mut small_pt = PageTable::new(&mut frames).unwrap();
        let mut large_pt = PageTable::new(&mut frames).unwrap();
        let span = 64u64 * 1024 * 1024;
        let base = 0x1_0000_0000u64;
        let mut off = 0;
        while off < span {
            let f = frames.alloc(0).unwrap();
            small_pt
                .map(
                    &mut frames,
                    VirtAddr(base + off),
                    f,
                    PageSize::Small4K,
                    PteFlags::rw(),
                )
                .unwrap();
            off += PageSize::Small4K.bytes();
        }
        let mut off = 0;
        while off < span {
            let f = frames.alloc(PageSize::Large2M.buddy_order()).unwrap();
            large_pt
                .map(
                    &mut frames,
                    VirtAddr(base + off),
                    f,
                    PageSize::Large2M,
                    PteFlags::rw(),
                )
                .unwrap();
            off += PageSize::Large2M.bytes();
        }
        assert_eq!(small_pt.stats().small_mappings, span / 4096);
        assert_eq!(large_pt.stats().large_mappings, span / (2 * 1024 * 1024));
        assert!(small_pt.table_bytes() > 8 * large_pt.table_bytes());
    }

    #[test]
    fn probe_of_unmapped_returns_none() {
        let (_frames, pt) = fixture();
        assert!(pt.probe(VirtAddr(0xdead_b000)).is_none());
    }
}
