//! Processes: an address space plus the identity the hardware tags it by.
//!
//! A [`Process`] is the OS-level face of a tenant — its own page tables
//! and VMA list (an [`AddressSpace`]) over the *shared* physical frame
//! pools, plus the ASID the TLBs and caches tag its entries with. Two
//! processes mapping the same [`crate::hugetlbfs::SharedSegment`] resolve
//! faults to the same physical frames (one memory image, the §3.3 shared
//! heap design), while their anonymous regions stay disjoint because each
//! allocation comes from the one buddy allocator.
//!
//! ASID 0 is reserved for the classic single-process configuration: with
//! one process and ASID 0, every tagged key is bit-identical to the
//! untagged key, so the multi-tenant machinery is exactly free when
//! unused.

use crate::error::VmResult;
use crate::frame::BuddyAllocator;
use crate::vma::AddressSpace;

/// One simulated process: a named address space with a hardware ASID.
#[derive(Debug)]
pub struct Process {
    asid: u16,
    name: String,
    aspace: AddressSpace,
}

impl Process {
    /// Create a process with a fresh, empty address space. The page-table
    /// root is drawn from `frames` — the same shared buddy allocator all
    /// tenants carve their anonymous memory from.
    pub fn new(frames: &mut BuddyAllocator, asid: u16, name: &str) -> VmResult<Self> {
        Ok(Process {
            asid,
            name: name.to_owned(),
            aspace: AddressSpace::new(frames)?,
        })
    }

    /// Wrap an already-built address space (the single-tenant `System`
    /// construction path, adopted into a tenant slot).
    pub fn from_parts(asid: u16, name: &str, aspace: AddressSpace) -> Self {
        Process {
            asid,
            name: name.to_owned(),
            aspace,
        }
    }

    /// The ASID the hardware tags this process's TLB entries with.
    pub fn asid(&self) -> u16 {
        self.asid
    }

    /// Human-readable tenant name (report labels).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The process's address space.
    pub fn aspace(&self) -> &AddressSpace {
        &self.aspace
    }

    /// Mutable access to the address space (fault handling, mmap).
    pub fn aspace_mut(&mut self) -> &mut AddressSpace {
        &mut self.aspace
    }

    /// Consume the process, yielding its address space.
    pub fn into_aspace(self) -> AddressSpace {
        self.aspace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::PageSize;
    use crate::hugetlbfs::HugePool;
    use crate::page_table::{AccessKind, PteFlags};
    use crate::vma::{Backing, Populate};

    #[test]
    fn processes_share_segment_frames_but_not_anonymous_ones() {
        let mut f = BuddyAllocator::new(256 * 1024 * 1024);
        let mut pool = HugePool::reserve(&mut f, 4).unwrap();
        let seg = pool.create_file("heap", PageSize::Large2M.bytes()).unwrap();

        let mut a = Process::new(&mut f, 1, "latency-0").unwrap();
        let mut b = Process::new(&mut f, 2, "batch").unwrap();
        assert_eq!(a.asid(), 1);
        assert_eq!(b.name(), "batch");

        let map_shared = |p: &mut Process, f: &mut BuddyAllocator| {
            p.aspace_mut()
                .mmap(
                    f,
                    seg.len_bytes(),
                    PageSize::Large2M,
                    PteFlags::rw(),
                    Backing::Shared(seg.clone()),
                    Populate::Eager,
                    "shared-heap",
                )
                .unwrap()
        };
        let va_a = map_shared(&mut a, &mut f);
        let va_b = map_shared(&mut b, &mut f);
        assert_eq!(seg.map_count(), 2, "both processes map the segment");

        let pa_a = a
            .aspace_mut()
            .access(&mut f, va_a.add(64), AccessKind::Read)
            .unwrap()
            .translation()
            .pa;
        let pa_b = b
            .aspace_mut()
            .access(&mut f, va_b.add(64), AccessKind::Read)
            .unwrap()
            .translation()
            .pa;
        assert_eq!(pa_a, pa_b, "shared file: one physical image");

        // Anonymous regions at the *same* virtual address stay physically
        // disjoint — separate page tables over one frame pool.
        let anon = |p: &mut Process, f: &mut BuddyAllocator| {
            let va = p
                .aspace_mut()
                .mmap(
                    f,
                    4096,
                    PageSize::Small4K,
                    PteFlags::rw(),
                    Backing::Anonymous,
                    Populate::Eager,
                    "private",
                )
                .unwrap();
            p.aspace_mut()
                .access(f, va, AccessKind::Write)
                .unwrap()
                .translation()
                .pa
        };
        assert_ne!(anon(&mut a, &mut f), anon(&mut b, &mut f));
    }

    #[test]
    fn map_count_tracks_mmap_and_munmap() {
        let mut f = BuddyAllocator::new(64 * 1024 * 1024);
        let mut pool = HugePool::reserve(&mut f, 2).unwrap();
        let seg = pool.create_file("lib", PageSize::Large2M.bytes()).unwrap();
        assert_eq!(seg.map_count(), 0);

        let mut p = Process::new(&mut f, 3, "t").unwrap();
        let va = p
            .aspace_mut()
            .mmap(
                &mut f,
                seg.len_bytes(),
                PageSize::Large2M,
                PteFlags::ro(),
                Backing::Shared(seg.clone()),
                Populate::OnDemand,
                "lib",
            )
            .unwrap();
        assert_eq!(seg.map_count(), 1);
        p.aspace_mut().munmap(&mut f, va).unwrap();
        assert_eq!(seg.map_count(), 0);
    }
}
