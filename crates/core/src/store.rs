//! Content-addressed, on-disk store of sweep [`RunRecord`]s — the
//! serving-scale result cache behind [`SweepSpec::run_incremental`].
//!
//! Every grid point of a sweep is a pure function of its configuration:
//! `(machine config, page policy, app, class, threads, run opts,
//! backend, engine version)` fully determines the [`RunRecord`] the
//! engine produces. The [`RunStore`] exploits that by addressing records
//! with a [`StoreKey`] — a stable 128-bit hash of a canonical
//! *fingerprint* string spelling out every one of those inputs — so an
//! unchanged configuration is a file read instead of a simulation, and
//! *any* change (a TLB geometry, a cost-model constant behind
//! [`lpomp_prof::ENGINE_VERSION`], the backend, the verify flag) changes
//! the key and forces a re-run. Loads re-validate the stored fingerprint
//! against the requested one, so even a full 128-bit hash collision (or
//! a renamed file) degrades to a cache miss, never a wrong record.
//!
//! Three layers build on the store:
//!
//! * **incremental sweeps** — [`SweepSpec::run_incremental`] consults
//!   the store per key, re-runs only the misses, and merges cached and
//!   fresh records into a [`SweepResults`] byte-identical to a cold run;
//! * **sharded execution** — [`SweepSpec::run_shard`] runs the
//!   `index`-th of [`Shard::count`] interleaved slices of the grid into
//!   a shared store and writes a per-shard [manifest](ShardManifest);
//!   [`SweepSpec::merge_shards`] validates that the manifests cover the
//!   whole grid exactly once (and that no key collided) before
//!   assembling the merged results;
//! * **JSON-lines streaming** — a [`JsonlSink`] receives one
//!   self-describing record line per configuration *as it completes*,
//!   so long sweeps are observable before they finish.
//!
//! Records carrying profiler attachments (`regions`/`trace`) are not
//! cached — sweeps never produce them, and the store refuses to persist
//! what it cannot round-trip byte-identically.
//!
//! [`SweepSpec::run_incremental`]: crate::SweepSpec::run_incremental
//! [`SweepSpec::run_shard`]: crate::SweepSpec::run_shard
//! [`SweepSpec::merge_shards`]: crate::SweepSpec::merge_shards
//! [`SweepResults`]: crate::SweepResults

use crate::backend::BackendKind;
use crate::experiment::{RunOpts, RunRecord};
use crate::policy::PagePolicy;
use lpomp_machine::MachineConfig;
use lpomp_npb::{AppKind, Class};
use lpomp_prof::{parse_json, Counters, Event, Json, ENGINE_VERSION};
use std::fmt::Write as _;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Schema version of the store's own file layout (bumped independently
/// of [`ENGINE_VERSION`], which tracks engine *semantics*).
const STORE_FORMAT: u64 = 1;

// ---------------------------------------------------------------------
// Keys.

/// The content address of one sweep configuration: a 128-bit FNV-1a
/// hash over the canonical fingerprint, plus the typed fields needed to
/// rebuild a [`RunRecord`] without parsing free-form enums back out of
/// JSON. Two keys are interchangeable iff their fingerprints are equal.
#[derive(Clone, Debug, PartialEq)]
pub struct StoreKey {
    hash: [u64; 2],
    fingerprint: String,
    app: AppKind,
    class: Class,
    machine: &'static str,
    policy: PagePolicy,
    threads: usize,
    backend: BackendKind,
}

/// 64-bit FNV-1a over `bytes`, from an arbitrary offset basis.
fn fnv1a64(seed: u64, bytes: &[u8]) -> u64 {
    let mut h = seed;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// Second lane's offset basis (golden-ratio perturbation) so the two
/// 64-bit lanes are independent and the combined address is 128-bit.
const FNV_OFFSET_2: u64 = FNV_OFFSET ^ 0x9e37_79b9_7f4a_7c15;

impl StoreKey {
    /// Key for one grid configuration.
    ///
    /// The fingerprint embeds the machine's full `Debug` rendering: every
    /// field of [`MachineConfig`] (TLB and cache geometries, cost model,
    /// NUMA layout, …) participates, and a *new* field invalidates old
    /// keys automatically — deliberately conservative, because a silent
    /// stale hit is the failure mode this store exists to eliminate.
    pub fn new(
        machine: &MachineConfig,
        app: AppKind,
        class: Class,
        policy: PagePolicy,
        threads: usize,
        opts: RunOpts,
        backend: BackendKind,
    ) -> StoreKey {
        let fingerprint = format!(
            "engine={ENGINE_VERSION};backend={};arch={};app={app};class={class};\
             threads={threads};policy={policy:?};verify={};machine={machine:?};tenancy=none",
            backend.label(),
            machine.arch().descriptor(),
            opts.verify,
        );
        let hash = [
            fnv1a64(FNV_OFFSET, fingerprint.as_bytes()),
            fnv1a64(FNV_OFFSET_2, fingerprint.as_bytes()),
        ];
        StoreKey {
            hash,
            fingerprint,
            app,
            class,
            machine: machine.name,
            policy,
            threads,
            backend,
        }
    }

    /// Key for the same configuration run as one tenant of a scheduled,
    /// multi-tenant machine: replaces the `tenancy=none` marker with
    /// `desc` (e.g. `"rr:slice=2000000:asid=tagged:n=4"`) and
    /// re-addresses the key. Any change to the scheduler configuration
    /// must land in `desc`, for the same reason the machine's full debug
    /// rendering is in the base fingerprint.
    ///
    /// # Panics
    /// Panics when a tenancy descriptor was already applied.
    pub fn with_tenancy(mut self, desc: &str) -> StoreKey {
        assert!(
            self.fingerprint.contains(";tenancy=none"),
            "tenancy descriptor applied twice"
        );
        self.fingerprint = self
            .fingerprint
            .replace(";tenancy=none", &format!(";tenancy={desc}"));
        self.rehash();
        self
    }

    /// Key for a *variant* of this configuration that the typed axes do
    /// not capture — a fragmentation preconditioner, a NUMA placement
    /// sweep cell, … Appends `;variant={desc}` to the fingerprint and
    /// re-addresses the key. Composable: distinct descriptors give
    /// distinct addresses.
    pub fn with_variant(mut self, desc: &str) -> StoreKey {
        let _ = write!(self.fingerprint, ";variant={desc}");
        self.rehash();
        self
    }

    /// Key for the same configuration run under a non-default loop
    /// schedule (the E8 scheduler sweep's axis). Appends `;sched={desc}`
    /// — e.g. `"hier:chunk=256:rb=2:wfp=1:pfw=1"` — and re-addresses the
    /// key. The default-schedule key carries no marker, so every record
    /// persisted before the scheduler existed keeps its address.
    pub fn with_schedule(mut self, desc: &str) -> StoreKey {
        let _ = write!(self.fingerprint, ";sched={desc}");
        self.rehash();
        self
    }

    fn rehash(&mut self) {
        self.hash = [
            fnv1a64(FNV_OFFSET, self.fingerprint.as_bytes()),
            fnv1a64(FNV_OFFSET_2, self.fingerprint.as_bytes()),
        ];
    }

    /// The canonical fingerprint the hash addresses.
    pub fn fingerprint(&self) -> &str {
        &self.fingerprint
    }

    /// The 32-hex-digit content address (also the file stem).
    pub fn address(&self) -> String {
        format!("{:016x}{:016x}", self.hash[0], self.hash[1])
    }

    /// File name of this key's record inside a store directory.
    pub fn file_name(&self) -> String {
        format!("{}.json", self.address())
    }
}

// ---------------------------------------------------------------------
// Record (de)serialization.

/// Serialize the cacheable payload of a record (everything but the
/// profiler attachments) as a single-line JSON object. `f64` fields use
/// Rust's shortest-round-trip formatting, so parsing them back with
/// `str::parse::<f64>` is bit-exact — the property the byte-identical
/// merge guarantee rests on.
pub(crate) fn record_json(rec: &RunRecord) -> String {
    let mut out = String::with_capacity(1024);
    let _ = write!(
        out,
        "{{\"app\":\"{}\",\"class\":\"{}\",\"machine\":\"{}\",\"policy\":\"{}\"",
        rec.app,
        rec.class,
        rec.machine,
        rec.policy.label()
    );
    if let PagePolicy::Mixed { threshold_bytes } = rec.policy {
        let _ = write!(out, ",\"mixed_threshold\":{threshold_bytes}");
    }
    let _ = write!(
        out,
        ",\"threads\":{},\"backend\":\"{}\",\"seconds\":{},\"cycles\":{},\"checksum\":{}",
        rec.threads, rec.backend, rec.seconds, rec.cycles, rec.checksum
    );
    out.push_str(",\"verified\":");
    match rec.verified {
        None => out.push_str("null"),
        Some(true) => out.push_str("true"),
        Some(false) => out.push_str("false"),
    }
    out.push_str(",\"counters\":{");
    for (i, e) in Event::ALL.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\":{}", e.mnemonic(), rec.counters.get(*e));
    }
    out.push_str("}}");
    out
}

fn opt_u64(j: &Json, key: &str) -> Result<u64, String> {
    let n = j
        .get(key)
        .and_then(Json::as_num)
        .ok_or_else(|| format!("missing number {key:?}"))?;
    if n < 0.0 || n.fract() != 0.0 {
        return Err(format!("{key:?} is not a non-negative integer"));
    }
    Ok(n as u64)
}

fn opt_str<'a>(j: &'a Json, key: &str) -> Result<&'a str, String> {
    j.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| format!("missing string {key:?}"))
}

/// Rebuild a record from [`record_json`] output, cross-checking every
/// identity field against the key it was loaded under. The typed fields
/// come from the *key* (so e.g. `machine` stays the preset's `'static`
/// string), the measured fields from the JSON.
pub(crate) fn record_from_json(j: &Json, key: &StoreKey) -> Result<RunRecord, String> {
    let check = |field: &str, got: &str, want: &str| -> Result<(), String> {
        if got != want {
            return Err(format!("{field}: stored {got:?} != requested {want:?}"));
        }
        Ok(())
    };
    check("app", opt_str(j, "app")?, key.app.name())?;
    check("class", opt_str(j, "class")?, &key.class.to_string())?;
    check("machine", opt_str(j, "machine")?, key.machine)?;
    check("policy", opt_str(j, "policy")?, key.policy.label())?;
    check("backend", opt_str(j, "backend")?, key.backend.label())?;
    if opt_u64(j, "threads")? as usize != key.threads {
        return Err("threads mismatch".into());
    }
    if let PagePolicy::Mixed { threshold_bytes } = key.policy {
        if opt_u64(j, "mixed_threshold")? != threshold_bytes {
            return Err("mixed_threshold mismatch".into());
        }
    }
    let seconds = j
        .get("seconds")
        .and_then(Json::as_num)
        .ok_or("missing seconds")?;
    let checksum = j
        .get("checksum")
        .and_then(Json::as_num)
        .ok_or("missing checksum")?;
    let cycles = opt_u64(j, "cycles")?;
    let verified = match j.get("verified") {
        Some(Json::Null) => None,
        Some(Json::Bool(b)) => Some(*b),
        _ => return Err("missing verified".into()),
    };
    let cj = j.get("counters").ok_or("missing counters")?;
    let mut counters = Counters::new();
    for e in Event::ALL {
        // Strict: a counter the current engine knows but the file lacks
        // means the file predates the event — reject, never default to 0.
        counters.set(e, opt_u64(cj, e.mnemonic())?);
    }
    Ok(RunRecord {
        app: key.app,
        class: key.class,
        machine: key.machine,
        policy: key.policy,
        threads: key.threads,
        seconds,
        cycles,
        counters,
        checksum,
        verified,
        regions: None,
        trace: None,
        backend: key.backend.label(),
    })
}

// ---------------------------------------------------------------------
// The store.

/// See the [module docs](self).
#[derive(Debug)]
pub struct RunStore {
    dir: PathBuf,
}

impl RunStore {
    /// Open (creating if needed) a store rooted at `dir`.
    pub fn open(dir: impl Into<PathBuf>) -> std::io::Result<RunStore> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(RunStore { dir })
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Load the record addressed by `key`, or `None` on any of: absent
    /// file, unparsable or truncated JSON, store-format or engine-version
    /// mismatch, fingerprint mismatch (hash collision or renamed file),
    /// or identity-field drift. A miss is always safe — the caller
    /// re-runs — so every failure maps to a miss, never a panic.
    pub fn load(&self, key: &StoreKey) -> Option<RunRecord> {
        let src = std::fs::read_to_string(self.dir.join(key.file_name())).ok()?;
        let j = parse_json(&src).ok()?;
        (opt_u64(&j, "v").ok()? == STORE_FORMAT).then_some(())?;
        (opt_u64(&j, "engine").ok()? == u64::from(ENGINE_VERSION)).then_some(())?;
        (opt_str(&j, "fp").ok()? == key.fingerprint()).then_some(())?;
        record_from_json(j.get("record")?, key).ok()
    }

    /// Persist `rec` under `key`. Returns `Ok(false)` — without writing —
    /// when the record carries profiler attachments the store cannot
    /// round-trip. The write goes through a temp file + rename, so
    /// concurrent shard writers racing on one key land a complete file
    /// (both would write identical bytes).
    pub fn save(&self, key: &StoreKey, rec: &RunRecord) -> std::io::Result<bool> {
        if rec.regions.is_some() || rec.trace.is_some() {
            return Ok(false);
        }
        let mut out = String::with_capacity(1536);
        let _ = writeln!(
            out,
            "{{\"v\":{STORE_FORMAT},\"engine\":{ENGINE_VERSION},\"fp\":\"{}\",\"record\":{}}}",
            escape(key.fingerprint()),
            record_json(rec)
        );
        self.write_atomic(&key.file_name(), out.as_bytes())?;
        Ok(true)
    }

    /// Persist an arbitrary single-line JSON object `payload` under
    /// `key`, inside the same versioned + fingerprinted envelope as
    /// [`Self::save`]. This is the generic-cell path used by sweeps whose
    /// grid points are not [`RunRecord`]s (e.g. the fragmentation and
    /// NUMA extension tables).
    pub fn save_cell(&self, key: &StoreKey, payload: &str) -> std::io::Result<()> {
        debug_assert!(
            !payload.contains('\n'),
            "cell payloads must be single-line JSON"
        );
        let mut out = String::with_capacity(256 + payload.len());
        let _ = writeln!(
            out,
            "{{\"v\":{STORE_FORMAT},\"engine\":{ENGINE_VERSION},\"fp\":\"{}\",\"record\":{payload}}}",
            escape(key.fingerprint()),
        );
        self.write_atomic(&key.file_name(), out.as_bytes())
    }

    /// Load a cell saved by [`Self::save_cell`], returning the parsed
    /// payload. Misses (on absence, corruption, version or fingerprint
    /// drift) exactly like [`Self::load`].
    pub fn load_cell(&self, key: &StoreKey) -> Option<Json> {
        let src = std::fs::read_to_string(self.dir.join(key.file_name())).ok()?;
        let j = parse_json(&src).ok()?;
        (opt_u64(&j, "v").ok()? == STORE_FORMAT).then_some(())?;
        (opt_u64(&j, "engine").ok()? == u64::from(ENGINE_VERSION)).then_some(())?;
        (opt_str(&j, "fp").ok()? == key.fingerprint()).then_some(())?;
        j.get("record").cloned()
    }

    /// Number of record files resident in the store (manifests excluded).
    pub fn len(&self) -> usize {
        let Ok(rd) = std::fs::read_dir(&self.dir) else {
            return 0;
        };
        rd.flatten()
            .filter(|e| {
                let name = e.file_name();
                let name = name.to_string_lossy();
                name.ends_with(".json") && !name.starts_with("manifest_")
            })
            .count()
    }

    /// Whether the store holds no records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn write_atomic(&self, name: &str, bytes: &[u8]) -> std::io::Result<()> {
        let tmp = self
            .dir
            .join(format!(".{}.tmp{}", name, std::process::id()));
        std::fs::write(&tmp, bytes)?;
        std::fs::rename(&tmp, self.dir.join(name))
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

// ---------------------------------------------------------------------
// Sharding.

/// One interleaved slice of a sweep grid: configuration `i` belongs to
/// shard `i % count`. Interleaving (rather than contiguous ranges)
/// balances the order-of-magnitude spread in per-config run time across
/// shards.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Shard {
    /// Zero-based shard index, `< count`.
    pub index: usize,
    /// Total number of shards.
    pub count: usize,
}

impl Shard {
    /// Parse the CLI spelling `i/n` with 1-based `i` (so `--shard 1/4 …
    /// 4/4` covers a grid). Returns `None` unless `1 <= i <= n`.
    pub fn parse(s: &str) -> Option<Shard> {
        let (i, n) = s.split_once('/')?;
        let i: usize = i.trim().parse().ok()?;
        let n: usize = n.trim().parse().ok()?;
        (i >= 1 && i <= n).then(|| Shard {
            index: i - 1,
            count: n,
        })
    }

    /// Whether this shard owns grid index `i`.
    pub fn covers(&self, i: usize) -> bool {
        i % self.count == self.index
    }
}

impl std::fmt::Display for Shard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.index + 1, self.count)
    }
}

/// The coverage proof one [`SweepSpec::run_shard`] invocation leaves in
/// the store: which grid indices the shard ran (or found cached) and
/// the addresses of their records. [`SweepSpec::merge_shards`] refuses
/// to assemble results until every shard's manifest is present and
/// their union covers the grid exactly once.
///
/// [`SweepSpec::run_shard`]: crate::SweepSpec::run_shard
/// [`SweepSpec::merge_shards`]: crate::SweepSpec::merge_shards
#[derive(Clone, Debug, PartialEq)]
pub struct ShardManifest {
    /// The sweep this shard belongs to ([`sweep_id`] of the spec).
    pub sweep: String,
    /// The shard.
    pub shard: Shard,
    /// `(grid index, record address)` pairs, in grid order.
    pub entries: Vec<(usize, String)>,
}

/// Identity of a whole sweep grid: a hash over every key's fingerprint
/// in canonical grid order (so it covers the engine version, backend,
/// opts, and each machine's full configuration).
pub fn sweep_id(keys: &[StoreKey]) -> String {
    let mut a = FNV_OFFSET;
    let mut b = FNV_OFFSET_2;
    for k in keys {
        a = fnv1a64(a, k.fingerprint().as_bytes());
        b = fnv1a64(b, k.fingerprint().as_bytes());
    }
    format!("{a:016x}{b:016x}")
}

impl ShardManifest {
    /// Manifest file name for a (sweep, shard) pair.
    pub fn file_name(sweep: &str, shard: Shard) -> String {
        format!("manifest_{sweep}_{}of{}.json", shard.index + 1, shard.count)
    }

    /// Write the manifest into the store (atomically, like records).
    pub fn write(&self, store: &RunStore) -> std::io::Result<PathBuf> {
        let mut out = String::with_capacity(256 + self.entries.len() * 48);
        let _ = write!(
            out,
            "{{\"v\":{STORE_FORMAT},\"engine\":{ENGINE_VERSION},\"sweep\":\"{}\",\
             \"shard\":{},\"of\":{},\"entries\":[",
            escape(&self.sweep),
            self.shard.index + 1,
            self.shard.count
        );
        for (i, (idx, addr)) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "[{idx},\"{addr}\"]");
        }
        out.push_str("]}\n");
        let name = Self::file_name(&self.sweep, self.shard);
        store.write_atomic(&name, out.as_bytes())?;
        Ok(store.dir().join(name))
    }

    /// Read a manifest file; errors describe what failed for merge
    /// diagnostics.
    pub fn read(path: &Path) -> Result<ShardManifest, String> {
        let src = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        let j = parse_json(&src).map_err(|e| format!("{}: {e}", path.display()))?;
        if opt_u64(&j, "v")? != STORE_FORMAT {
            return Err(format!("{}: unknown store format", path.display()));
        }
        if opt_u64(&j, "engine")? != u64::from(ENGINE_VERSION) {
            return Err(format!(
                "{}: engine version {} != current {ENGINE_VERSION}",
                path.display(),
                opt_u64(&j, "engine")?
            ));
        }
        let sweep = opt_str(&j, "sweep")?.to_owned();
        let shard_1 = opt_u64(&j, "shard")? as usize;
        let count = opt_u64(&j, "of")? as usize;
        if shard_1 < 1 || shard_1 > count {
            return Err(format!(
                "{}: shard {shard_1}/{count} invalid",
                path.display()
            ));
        }
        let mut entries = Vec::new();
        for pair in j
            .get("entries")
            .and_then(Json::as_arr)
            .ok_or("missing entries")?
        {
            let p = pair.as_arr().ok_or("manifest entry is not a pair")?;
            let idx = p
                .first()
                .and_then(Json::as_num)
                .ok_or("manifest entry index")? as usize;
            let addr = p
                .get(1)
                .and_then(Json::as_str)
                .ok_or("manifest entry address")?
                .to_owned();
            entries.push((idx, addr));
        }
        Ok(ShardManifest {
            sweep,
            shard: Shard {
                index: shard_1 - 1,
                count,
            },
            entries,
        })
    }
}

// ---------------------------------------------------------------------
// JSON-lines streaming.

/// A line-buffered JSON-lines sink: one object per completed
/// configuration, in *completion* order (workers race, so lines are not
/// grid-ordered — each line carries its full identity). Lines add
/// `"cached":true|false` to the stored-record payload so consumers can
/// separate replayed results from fresh engine runs.
pub struct JsonlSink {
    out: Mutex<Box<dyn std::io::Write + Send>>,
}

impl JsonlSink {
    /// Stream to (truncating) a file at `path`.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<JsonlSink> {
        Ok(Self::from_writer(Box::new(std::fs::File::create(path)?)))
    }

    /// Stream to an arbitrary writer.
    pub fn from_writer(w: Box<dyn std::io::Write + Send>) -> JsonlSink {
        JsonlSink { out: Mutex::new(w) }
    }

    /// Emit one record line; flushes so tail-readers see it immediately.
    /// Write errors are reported to stderr, not fatal — streaming is
    /// observability, the sweep's results do not depend on it.
    pub fn emit(&self, rec: &RunRecord, cached: bool) {
        self.emit_line(&record_json(rec), cached);
    }

    /// Emit one arbitrary single-line JSON object with the same
    /// `"cached"` tag appended — the generic-cell counterpart of
    /// [`Self::emit`].
    pub fn emit_line(&self, payload: &str, cached: bool) {
        let mut line = payload.to_owned();
        let closer = line.pop();
        debug_assert_eq!(closer, Some('}'));
        let _ = writeln!(line, ",\"cached\":{cached}}}");
        let mut out = self.out.lock().unwrap_or_else(|e| e.into_inner());
        if let Err(e) = out.write_all(line.as_bytes()).and_then(|()| out.flush()) {
            eprintln!("jsonl sink: dropped a record line: {e}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lpomp_machine::{opteron_2x2, xeon_2x2_ht};

    fn dummy_record(key: &StoreKey) -> RunRecord {
        let mut counters = Counters::new();
        counters.add(Event::Cycles, 123_456_789);
        counters.add(Event::DtlbMisses, 42);
        RunRecord {
            app: key.app,
            class: key.class,
            machine: key.machine,
            policy: key.policy,
            threads: key.threads,
            seconds: 0.1 + 1.0 / 3.0,
            cycles: 123_456_789,
            counters,
            checksum: -2.444_260_326_430_914_5e1,
            verified: None,
            regions: None,
            trace: None,
            backend: key.backend.label(),
        }
    }

    fn key(policy: PagePolicy, threads: usize) -> StoreKey {
        StoreKey::new(
            &opteron_2x2(),
            AppKind::Cg,
            Class::S,
            policy,
            threads,
            RunOpts::default(),
            BackendKind::CycleExact,
        )
    }

    fn temp_store(tag: &str) -> RunStore {
        let dir = std::env::temp_dir().join(format!("lpomp-store-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        RunStore::open(dir).unwrap()
    }

    #[test]
    fn key_is_stable_and_sensitive_to_every_axis() {
        let base = key(PagePolicy::Small4K, 4);
        assert_eq!(base, key(PagePolicy::Small4K, 4), "same inputs, same key");
        assert_eq!(base.address().len(), 32);
        // Each configuration axis moves the address.
        let variants = [
            key(PagePolicy::Large2M, 4),
            key(PagePolicy::Small4K, 2),
            StoreKey::new(
                &xeon_2x2_ht(),
                AppKind::Cg,
                Class::S,
                PagePolicy::Small4K,
                4,
                RunOpts::default(),
                BackendKind::CycleExact,
            ),
            StoreKey::new(
                &opteron_2x2(),
                AppKind::Mg,
                Class::S,
                PagePolicy::Small4K,
                4,
                RunOpts::default(),
                BackendKind::CycleExact,
            ),
            StoreKey::new(
                &opteron_2x2(),
                AppKind::Cg,
                Class::W,
                PagePolicy::Small4K,
                4,
                RunOpts::default(),
                BackendKind::CycleExact,
            ),
            StoreKey::new(
                &opteron_2x2(),
                AppKind::Cg,
                Class::S,
                PagePolicy::Small4K,
                4,
                RunOpts { verify: true },
                BackendKind::CycleExact,
            ),
            StoreKey::new(
                &opteron_2x2(),
                AppKind::Cg,
                Class::S,
                PagePolicy::Small4K,
                4,
                RunOpts::default(),
                BackendKind::Analytic,
            ),
        ];
        for v in &variants {
            assert_ne!(base.address(), v.address(), "{}", v.fingerprint());
        }
        // A machine-config detail (not just the name) moves the address.
        let mut tweaked = opteron_2x2();
        tweaked.ram_bytes += 1;
        let t = StoreKey::new(
            &tweaked,
            AppKind::Cg,
            Class::S,
            PagePolicy::Small4K,
            4,
            RunOpts::default(),
            BackendKind::CycleExact,
        );
        assert_ne!(base.address(), t.address());
        assert!(base
            .fingerprint()
            .contains(&format!("engine={ENGINE_VERSION}")));
    }

    #[test]
    fn tenancy_and_variant_move_the_address() {
        let base = key(PagePolicy::Small4K, 4);
        assert!(base.fingerprint().ends_with(";tenancy=none"));
        let ten = base
            .clone()
            .with_tenancy("rr:slice=2000000:asid=tagged:n=2");
        assert_ne!(base.address(), ten.address());
        assert!(ten
            .fingerprint()
            .contains("tenancy=rr:slice=2000000:asid=tagged:n=2"));
        assert_eq!(ten.address().len(), 32);
        let v1 = base.clone().with_variant("frag=0.5");
        let v2 = base.clone().with_variant("frag=0.9");
        assert_ne!(base.address(), v1.address());
        assert_ne!(v1.address(), v2.address());
        // Tenancy composes after a variant (the marker sits mid-string).
        let both = v1.clone().with_tenancy("rr");
        assert_ne!(both.address(), v1.address());
    }

    #[test]
    fn schedule_descriptor_moves_the_address() {
        let base = key(PagePolicy::Small4K, 4);
        let hier = base
            .clone()
            .with_schedule("hier:chunk=256:rb=2:wfp=1:pfw=1");
        assert_ne!(base.address(), hier.address());
        assert!(hier.fingerprint().contains(";sched=hier:chunk=256"));
        // Distinct knob settings give distinct addresses…
        let ablated = base
            .clone()
            .with_schedule("hier:chunk=256:rb=2:wfp=0:pfw=1");
        assert_ne!(hier.address(), ablated.address());
        // …and the descriptor composes with a variant.
        let v = base.clone().with_variant("place=ft").with_schedule("hier");
        assert_ne!(v.address(), base.clone().with_variant("place=ft").address());
    }

    #[test]
    fn generic_cells_round_trip_and_miss_on_drift() {
        let store = temp_store("cells");
        let k = key(PagePolicy::Small4K, 1).with_variant("cell");
        assert!(store.load_cell(&k).is_none(), "cold store misses");
        store.save_cell(&k, "{\"x\":1,\"y\":\"z\"}").unwrap();
        let j = store.load_cell(&k).unwrap();
        assert_eq!(j.get("x").and_then(Json::as_num), Some(1.0));
        assert_eq!(j.get("y").and_then(Json::as_str), Some("z"));
        // A different variant misses.
        let other = key(PagePolicy::Small4K, 1).with_variant("other");
        assert!(store.load_cell(&other).is_none());
        // RunRecord loads reject cell files: miss, never a wrong record.
        assert!(store.load(&k).is_none());
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn save_load_round_trips_byte_identically() {
        let store = temp_store("roundtrip");
        let k = key(PagePolicy::Large2M, 2);
        let mut rec = dummy_record(&k);
        rec.verified = Some(true);
        assert!(store.load(&k).is_none(), "cold store misses");
        assert!(store.save(&k, &rec).unwrap());
        let back = store.load(&k).expect("hit after save");
        // RunRecord's PartialEq compares f64 bits via ==; equality here is
        // the byte-identical guarantee the incremental sweep relies on.
        assert_eq!(back, rec);
        assert_eq!(store.len(), 1);
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn mixed_policy_round_trips_with_threshold() {
        let store = temp_store("mixed");
        let k = key(
            PagePolicy::Mixed {
                threshold_bytes: 256 * 1024,
            },
            4,
        );
        let rec = dummy_record(&k);
        assert!(store.save(&k, &rec).unwrap());
        assert_eq!(store.load(&k).unwrap(), rec);
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn corrupt_stale_or_colliding_files_miss_instead_of_panicking() {
        let store = temp_store("corrupt");
        let k = key(PagePolicy::Small4K, 1);
        let rec = dummy_record(&k);
        store.save(&k, &rec).unwrap();
        let path = store.dir().join(k.file_name());
        let good = std::fs::read_to_string(&path).unwrap();

        // Truncated, garbage, and wrong-typed files: all miss.
        for bad in [
            &good[..good.len() / 2],
            "not json at all",
            "",
            "{\"v\":1}",
            "[1,2,3]",
        ] {
            std::fs::write(&path, bad).unwrap();
            assert!(store.load(&k).is_none(), "{bad:?} must miss");
        }

        // Engine-version drift: stale analytic semantics must re-run.
        let stale = good.replace(
            &format!("\"engine\":{ENGINE_VERSION}"),
            &format!("\"engine\":{}", ENGINE_VERSION - 1),
        );
        assert_ne!(stale, good);
        std::fs::write(&path, &stale).unwrap();
        assert!(store.load(&k).is_none(), "stale engine must miss");

        // Fingerprint drift under the right file name (a collision or a
        // renamed file): miss, never a wrong record.
        let collided = good.replace("policy=Small4K", "policy=Large2M");
        assert_ne!(collided, good);
        std::fs::write(&path, &collided).unwrap();
        assert!(store.load(&k).is_none(), "collision must miss");

        // Restoring the good bytes restores the hit.
        std::fs::write(&path, &good).unwrap();
        assert_eq!(store.load(&k).unwrap(), rec);
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn records_with_attachments_are_not_cached() {
        let store = temp_store("attach");
        let k = key(PagePolicy::Small4K, 1);
        let mut rec = dummy_record(&k);
        rec.trace = Some("{}".to_owned());
        assert!(!store.save(&k, &rec).unwrap());
        assert!(store.load(&k).is_none());
        assert!(store.is_empty());
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn shard_parse_and_coverage_partition() {
        assert_eq!(Shard::parse("1/4"), Some(Shard { index: 0, count: 4 }));
        assert_eq!(Shard::parse("4/4"), Some(Shard { index: 3, count: 4 }));
        assert_eq!(Shard::parse("0/4"), None, "1-based");
        assert_eq!(Shard::parse("5/4"), None);
        assert_eq!(Shard::parse("x/4"), None);
        assert_eq!(Shard::parse("2"), None);
        assert_eq!(Shard { index: 1, count: 3 }.to_string(), "2/3");
        // Shards partition any index range exactly once.
        for n in 1..=5 {
            for i in 0..100 {
                let owners = (0..n)
                    .filter(|&s| Shard { index: s, count: n }.covers(i))
                    .count();
                assert_eq!(owners, 1, "index {i} with {n} shards");
            }
        }
    }

    #[test]
    fn manifest_round_trips() {
        let store = temp_store("manifest");
        let m = ShardManifest {
            sweep: "deadbeef".to_owned(),
            shard: Shard { index: 1, count: 2 },
            entries: vec![(1, "aa".into()), (3, "bb".into())],
        };
        let path = m.write(&store).unwrap();
        assert_eq!(ShardManifest::read(&path).unwrap(), m);
        assert_eq!(store.len(), 0, "manifests are not records");
        // Corrupt manifests produce errors, not panics.
        std::fs::write(&path, "{\"v\":1,").unwrap();
        assert!(ShardManifest::read(&path).is_err());
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn jsonl_sink_emits_self_describing_lines() {
        let buf = std::sync::Arc::new(Mutex::new(Vec::<u8>::new()));
        struct Shared(std::sync::Arc<Mutex<Vec<u8>>>);
        impl std::io::Write for Shared {
            fn write(&mut self, b: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(b);
                Ok(b.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let sink = JsonlSink::from_writer(Box::new(Shared(buf.clone())));
        let k = key(PagePolicy::Small4K, 2);
        sink.emit(&dummy_record(&k), true);
        sink.emit(&dummy_record(&k), false);
        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        let first = parse_json(lines[0]).unwrap();
        assert_eq!(first.get("cached"), Some(&Json::Bool(true)));
        assert_eq!(first.get("app").and_then(Json::as_str), Some("CG"));
        let second = parse_json(lines[1]).unwrap();
        assert_eq!(second.get("cached"), Some(&Json::Bool(false)));
    }
}
