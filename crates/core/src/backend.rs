//! The backend selector: one configuration point, two evaluation engines.
//!
//! [`BackendKind::CycleExact`] is the access-by-access simulation behind
//! every golden figure — authoritative and slow. [`BackendKind::Analytic`]
//! replays a one-time captured reference stream ([`StreamProfile`])
//! through the closed-form model in [`lpomp_machine::analytic`]: after the
//! capture run, any (machine preset × page policy × thread count × NUMA
//! placement) point costs milliseconds instead of seconds.
//!
//! The split is sound because the runtime schedules statically: a
//! kernel's per-thread reference stream depends only on `(app, class,
//! threads)`, never on the machine it is timed against. Captures are
//! therefore taken once on a canonical configuration and cached
//! process-wide (and optionally on disk, see [`ProfileCache`]).
//!
//! ```
//! use lpomp_core::{run_backend, BackendKind, PagePolicy, RunOpts};
//! use lpomp_npb::{AppKind, Class};
//! use lpomp_machine::opteron_2x2;
//!
//! let exact = run_backend(BackendKind::CycleExact, AppKind::Cg, Class::S,
//!                         opteron_2x2(), PagePolicy::Large2M, 4,
//!                         RunOpts::default());
//! let fast = run_backend(BackendKind::Analytic, AppKind::Cg, Class::S,
//!                        opteron_2x2(), PagePolicy::Large2M, 4,
//!                        RunOpts::default());
//! let err = lpomp_core::xval_seconds_err_pct(fast.seconds, exact.seconds);
//! assert!(err <= lpomp_core::XVAL_SECONDS_BAND_PCT);
//! ```

use crate::experiment::{run_system, RunOpts, RunRecord};
use crate::policy::{PagePolicy, PopulatePolicy};
use crate::system::SystemBuilder;
use lpomp_machine::{evaluate, AnalyticPoint, MachineConfig};
use lpomp_npb::{AppKind, Class, ProfileCache};
use lpomp_prof::reuse::StreamProfile;
use lpomp_runtime::{BumpAllocator, Team};
use std::sync::{Arc, OnceLock};

/// Which engine evaluates a configuration.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum BackendKind {
    /// The access-by-access simulation ([`run_system`]). Authoritative.
    #[default]
    CycleExact,
    /// The reuse-profile model ([`lpomp_machine::analytic`]), fed by a
    /// cached capture. Fast; validated against `CycleExact` within the
    /// [`XVAL_SECONDS_BAND_PCT`] band.
    Analytic,
}

impl BackendKind {
    /// Stable label used in reports and CLI flags.
    pub fn label(self) -> &'static str {
        match self {
            BackendKind::CycleExact => "cycle",
            BackendKind::Analytic => "analytic",
        }
    }

    /// Parse a CLI-flag spelling of a backend.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "cycle" | "cycle-exact" | "exact" => Some(BackendKind::CycleExact),
            "analytic" | "fast" => Some(BackendKind::Analytic),
            _ => None,
        }
    }

    /// The backend implementation.
    pub fn backend(self) -> &'static dyn Backend {
        match self {
            BackendKind::CycleExact => &CycleExact,
            BackendKind::Analytic => &Analytic,
        }
    }
}

impl std::fmt::Display for BackendKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// An evaluation engine: turns a configured system into a [`RunRecord`].
///
/// Both implementations fill the same record shape from the same charge
/// tables ([`lpomp_machine::CostModel`]); they differ in *how* the
/// charges are summed — simulation vs closed form.
pub trait Backend: Sync {
    /// The backend's [`BackendKind::label`].
    fn name(&self) -> &'static str;

    /// Evaluate one configuration.
    fn run(&self, app: AppKind, class: Class, builder: &SystemBuilder, opts: RunOpts) -> RunRecord;
}

/// The cycle-exact engine — delegates to [`run_system`].
pub struct CycleExact;

impl Backend for CycleExact {
    fn name(&self) -> &'static str {
        BackendKind::CycleExact.label()
    }

    fn run(&self, app: AppKind, class: Class, builder: &SystemBuilder, opts: RunOpts) -> RunRecord {
        run_system(app, class, builder, opts)
    }
}

/// The analytic engine — evaluates the cached [`StreamProfile`].
pub struct Analytic;

impl Backend for Analytic {
    fn name(&self) -> &'static str {
        BackendKind::Analytic.label()
    }

    fn run(&self, app: AppKind, class: Class, builder: &SystemBuilder, opts: RunOpts) -> RunRecord {
        let cfg = builder.config();
        // The capture-once premise is static scheduling: a per-thread
        // reference stream valid on every machine. A schedule override
        // (the hierarchical work-stealer) makes thread↔iteration binding
        // machine-dependent, so the model would be fed streams the run
        // never executes. Fall back to the authoritative engine — the
        // record says so via its backend label — and xval stays exact.
        if cfg.schedule.is_some() {
            return run_system(app, class, builder, opts);
        }
        let profile = cached_profile(app, class, cfg.threads);
        let point = AnalyticPoint {
            profile: &profile,
            config: &cfg.machine,
            page_size: cfg.policy.heap_page_size_on(cfg.machine.arch()),
            demand_faults: cfg.populate == PopulatePolicy::OnDemand,
        };
        let res = evaluate(&point);
        // The profile's checksum is the captured run's; verifying it
        // costs one native serial execution, like the cycle backend.
        let verified = opts.verify.then(|| {
            let mut kernel = app.build(class);
            let mut alloc = BumpAllocator::unbounded();
            kernel.setup(&mut alloc);
            let mut team = Team::native(1);
            let _ = kernel.run(&mut team);
            kernel.verify(profile.checksum)
        });
        RunRecord {
            app,
            class,
            machine: cfg.machine.name,
            policy: cfg.policy,
            threads: cfg.threads,
            seconds: res.seconds,
            cycles: res.cycles,
            counters: res.counters,
            checksum: profile.checksum,
            verified,
            regions: None,
            trace: None,
            backend: BackendKind::Analytic.label(),
        }
    }
}

/// Run one configuration through a backend — the backend-generic sibling
/// of [`crate::run_sim`].
pub fn run_backend(
    kind: BackendKind,
    app: AppKind,
    class: Class,
    machine: MachineConfig,
    policy: PagePolicy,
    threads: usize,
    opts: RunOpts,
) -> RunRecord {
    let builder = SystemBuilder::new(machine).policy(policy).threads(threads);
    kind.backend().run(app, class, &builder, opts)
}

/// The process-wide profile cache the analytic backend draws from.
pub fn profiles() -> &'static ProfileCache {
    static CACHE: OnceLock<ProfileCache> = OnceLock::new();
    CACHE.get_or_init(ProfileCache::new)
}

/// Fetch — capturing on first use — the reference-stream profile for a
/// key. Capture runs once per `(app, class, threads)` per process (or
/// once ever, with `LPOMP_PROFILE_DIR` set).
pub fn cached_profile(app: AppKind, class: Class, threads: usize) -> Arc<StreamProfile> {
    profiles().get_or_capture(app, class, threads, || capture_profile(app, class, threads))
}

/// One capture run: simulate the kernel once with recording hooks
/// enabled and distill the reference stream into a [`StreamProfile`].
///
/// The capture machine is the canonical Opteron preset under 4 KB pages
/// (the Xeon when the thread count needs its SMT contexts) — an
/// arbitrary choice, because the recorded stream (virtual addresses,
/// access modes, region labels, barrier structure) is identical on every
/// preset; only the *charges* differ, and those are what
/// [`evaluate`] recomputes per point.
pub fn capture_profile(app: AppKind, class: Class, threads: usize) -> StreamProfile {
    let opteron = lpomp_machine::opteron_2x2();
    let machine = if threads <= opteron.contexts() {
        opteron
    } else {
        lpomp_machine::xeon_2x2_ht()
    };
    let builder = SystemBuilder::new(machine)
        .policy(PagePolicy::Small4K)
        .threads(threads);
    let mut kernel = app.build(class);
    let mut sys = builder
        .build(kernel.as_mut())
        .unwrap_or_else(|e| panic!("{app} {class} capture build failed: {e}"));
    sys.team
        .engine_mut()
        .expect("capture requires a simulated team")
        .enable_capture();
    let checksum = kernel.run(&mut sys.team);
    let capture = sys
        .team
        .engine_mut()
        .unwrap()
        .take_capture()
        .expect("capture was enabled");
    capture.finish(&app.to_string(), &class.to_string(), checksum)
}

/// Cross-validation band for simulated run time: on every golden
/// configuration, `|analytic − exact| / exact × 100` must stay at or
/// below this (see `tests/backend_xval.rs` and DESIGN.md for the
/// methodology; `results/xval_W.txt` records the measured errors).
pub const XVAL_SECONDS_BAND_PCT: f64 = 12.0;

/// Absolute floor for the run-time error denominator (see
/// [`xval_seconds_err_pct`]): sub-millisecond configurations (class S at
/// high thread counts) are dominated by cold-start effects and barrier
/// constants, where tens of microseconds of absolute error read as
/// double-digit relative error. No decision the sweeps inform rests on
/// a sub-millisecond delta, so error is measured against the floor.
pub const XVAL_SECONDS_FLOOR: f64 = 1e-3;

/// Relative run-time error in percent, with the [`XVAL_SECONDS_FLOOR`]
/// denominator clamp for sub-millisecond configurations.
pub fn xval_seconds_err_pct(predicted: f64, reference: f64) -> f64 {
    (predicted - reference).abs() / reference.abs().max(XVAL_SECONDS_FLOOR) * 100.0
}

/// Cross-validation band for aggregate DTLB misses — looser than the
/// run-time band because the per-thread capture cannot express
/// cross-thread effects: cold misses on SMT-shared TLBs dedupe between
/// siblings, and a sibling's walks refill entries the profile counts as
/// evicted. (Set conflicts themselves are captured; see
/// `CONFLICT_SHAPES` in `lpomp-prof`.)
pub const XVAL_DTLB_BAND_PCT: f64 = 40.0;

/// Absolute floor for the DTLB error denominator (see
/// [`xval_dtlb_err_pct`]): below this many misses a configuration's
/// entire TLB cost is under 0.1% of any class-W run time, so relative
/// error against the true count is noise (e.g. 8 predicted vs 4 actual
/// cold misses is "100%"). Error is measured against the floor instead.
pub const XVAL_DTLB_FLOOR: u64 = 10_000;

/// Relative DTLB-miss error in percent, with the [`XVAL_DTLB_FLOOR`]
/// denominator clamp for negligible counts.
pub fn xval_dtlb_err_pct(predicted: u64, reference: u64) -> f64 {
    let denom = reference.max(XVAL_DTLB_FLOOR) as f64;
    (predicted as f64 - reference as f64).abs() / denom * 100.0
}

/// Relative error of a prediction against a reference, in percent.
/// A zero reference with a zero prediction is 0%; a zero reference with
/// a nonzero prediction is infinite.
pub fn rel_err_pct(predicted: f64, reference: f64) -> f64 {
    if reference == 0.0 {
        if predicted == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        (predicted - reference).abs() / reference.abs() * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_labels_round_trip() {
        for kind in [BackendKind::CycleExact, BackendKind::Analytic] {
            assert_eq!(BackendKind::parse(kind.label()), Some(kind));
            assert_eq!(kind.backend().name(), kind.label());
            assert_eq!(kind.to_string(), kind.label());
        }
        assert_eq!(BackendKind::parse("exact"), Some(BackendKind::CycleExact));
        assert_eq!(BackendKind::parse("fast"), Some(BackendKind::Analytic));
        assert_eq!(BackendKind::parse("quantum"), None);
        assert_eq!(BackendKind::default(), BackendKind::CycleExact);
    }

    #[test]
    fn rel_err_edge_cases() {
        assert_eq!(rel_err_pct(0.0, 0.0), 0.0);
        assert_eq!(rel_err_pct(1.0, 0.0), f64::INFINITY);
        assert!((rel_err_pct(1.1, 1.0) - 10.0).abs() < 1e-9);
        assert!((rel_err_pct(0.9, 1.0) - 10.0).abs() < 1e-9);
        // The DTLB metric clamps tiny denominators to the floor…
        let e = xval_dtlb_err_pct(8, 4);
        assert!((e - 400.0 / XVAL_DTLB_FLOOR as f64).abs() < 1e-9);
        // …and is plain relative error above it.
        let big = 10 * XVAL_DTLB_FLOOR;
        assert!((xval_dtlb_err_pct(big + big / 10, big) - 10.0).abs() < 1e-9);
        // The seconds metric clamps the same way at its 1 ms floor: the
        // 100 µs absolute gap reads against 1 ms, not the 100 µs run.
        assert!((xval_seconds_err_pct(2e-4, 1e-4) - 10.0).abs() < 1e-9);
        // …and is plain relative error above it.
        assert!((xval_seconds_err_pct(1.1, 1.0) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn analytic_matches_cycle_shape_and_verifies() {
        let opts = RunOpts { verify: true };
        let exact = run_backend(
            BackendKind::CycleExact,
            AppKind::Cg,
            Class::S,
            lpomp_machine::opteron_2x2(),
            PagePolicy::Small4K,
            2,
            opts,
        );
        let fast = run_backend(
            BackendKind::Analytic,
            AppKind::Cg,
            Class::S,
            lpomp_machine::opteron_2x2(),
            PagePolicy::Small4K,
            2,
            opts,
        );
        assert_eq!(exact.backend, "cycle");
        assert_eq!(fast.backend, "analytic");
        assert_eq!(fast.app, exact.app);
        assert_eq!(fast.machine, exact.machine);
        assert_eq!(fast.threads, exact.threads);
        assert_eq!(fast.verified, Some(true));
        assert!(fast.seconds > 0.0 && fast.cycles > 0);
        // Capture ran on the same engine, so the checksums agree exactly.
        assert_eq!(fast.checksum, exact.checksum);
    }

    #[test]
    fn capture_is_cached_per_key() {
        let before = profiles().len();
        let a = cached_profile(AppKind::Ep, Class::S, 2);
        let b = cached_profile(AppKind::Ep, Class::S, 2);
        assert!(Arc::ptr_eq(&a, &b));
        assert!(!profiles().is_empty() && profiles().len() >= before);
    }

    #[test]
    fn analytic_with_schedule_override_falls_back_to_cycle() {
        use lpomp_runtime::Schedule;
        let builder = SystemBuilder::new(lpomp_machine::opteron_2x2())
            .policy(PagePolicy::Small4K)
            .threads(2)
            .schedule(Schedule::Hierarchical { chunk: 128 });
        let rec = BackendKind::Analytic.backend().run(
            AppKind::Cg,
            Class::S,
            &builder,
            RunOpts::default(),
        );
        assert_eq!(rec.backend, "cycle", "override must force the exact engine");
        let exact = BackendKind::CycleExact.backend().run(
            AppKind::Cg,
            Class::S,
            &builder,
            RunOpts::default(),
        );
        assert_eq!(rec, exact, "fallback is the cycle engine, verbatim");
    }

    #[test]
    fn analytic_preserves_page_size_ordering() {
        // The figure-4 effect must survive the model: 2 MB pages cut CG's
        // DTLB misses and never slow it down.
        let small = run_backend(
            BackendKind::Analytic,
            AppKind::Cg,
            Class::S,
            lpomp_machine::opteron_2x2(),
            PagePolicy::Small4K,
            4,
            RunOpts::default(),
        );
        let large = run_backend(
            BackendKind::Analytic,
            AppKind::Cg,
            Class::S,
            lpomp_machine::opteron_2x2(),
            PagePolicy::Large2M,
            4,
            RunOpts::default(),
        );
        assert!(large.dtlb_misses() * 2 < small.dtlb_misses());
        assert!(large.seconds <= small.seconds);
    }
}
