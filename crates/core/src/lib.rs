//! # `lpomp-core` — large-page support for an OpenMP-style runtime
//!
//! The paper's primary contribution, assembled from the substrate crates:
//! a fork-join runtime whose **entire shared data region is preallocated
//! from a boot-reserved pool of 2 MB pages** (the modified Omni/SCASH of
//! Noronha & Panda, IPDPS 2007, §3.3), together with the experiment
//! harness that reproduces the paper's evaluation.
//!
//! * [`policy`] — [`PagePolicy`] (4 KB / 2 MB / mixed) and the
//!   preallocation-vs-demand choice;
//! * [`system`] — [`System::builder`]: one fluent front door to the code
//!   segment, hugetlbfs pool, shared map file, mailbox file, region
//!   allocator, daemons, NUMA, profiling and the simulated team;
//! * [`experiment`] — [`run_sim`] / [`run_system`]: one call per figure
//!   bar, returning run time plus the full counter sheet (and, when the
//!   builder enables profiling, the per-region attribution and trace).
//!
//! ## Quickstart
//!
//! ```
//! use lpomp_core::{run_sim, PagePolicy, RunOpts};
//! use lpomp_npb::{AppKind, Class};
//! use lpomp_machine::opteron_2x2;
//!
//! let small = run_sim(AppKind::Cg, Class::S, opteron_2x2(),
//!                     PagePolicy::Small4K, 4, RunOpts::default());
//! let large = run_sim(AppKind::Cg, Class::S, opteron_2x2(),
//!                     PagePolicy::Large2M, 4, RunOpts::default());
//! assert!(large.dtlb_misses() < small.dtlb_misses());
//! ```
//!
//! Per-region attribution (the paper's OProfile-per-loop view):
//!
//! ```
//! use lpomp_core::{run_system, PagePolicy, ProfileSpec, RunOpts, System};
//! use lpomp_npb::{AppKind, Class};
//! use lpomp_machine::opteron_2x2;
//! use lpomp_prof::Event;
//!
//! let b = System::builder(opteron_2x2())
//!     .threads(4)
//!     .policy(PagePolicy::Small4K)
//!     .profile(ProfileSpec::Regions);
//! let r = run_system(AppKind::Cg, Class::S, &b, RunOpts::default());
//! let sheet = r.regions.unwrap();
//! for (region, misses) in sheet.top_by(Event::DtlbMisses) {
//!     println!("{:>12}  {}", misses, sheet.name(region));
//! }
//! ```

#![warn(missing_docs)]

pub mod backend;
pub mod experiment;
pub mod parallel;
pub mod policy;
pub mod store;
pub mod sweep;
pub mod system;

pub use backend::{
    cached_profile, capture_profile, rel_err_pct, run_backend, xval_dtlb_err_pct,
    xval_seconds_err_pct, Analytic, Backend, BackendKind, CycleExact, XVAL_DTLB_BAND_PCT,
    XVAL_DTLB_FLOOR, XVAL_SECONDS_BAND_PCT, XVAL_SECONDS_FLOOR,
};
pub use experiment::{figure4_thread_counts, run_sim, run_system, RunOpts, RunRecord};
pub use lpomp_prof::ProfileSpec;
pub use lpomp_vm::{Arch, MMArch};
pub use parallel::{default_workers, par_map};
pub use policy::{PagePolicy, PopulatePolicy};
pub use store::{sweep_id, JsonlSink, RunStore, Shard, ShardManifest, StoreKey};
pub use sweep::{GridCell, IncrementalSweep, KeyedGrid, SweepResults, SweepSpec};
pub use system::{
    MultiRunReport, MultiSystem, SetupStats, System, SystemBuilder, SystemConfig, TenancyConfig,
    TenantReport, TenantSpec, CODE_BASE, DEFAULT_TIMESLICE,
};
