//! The large-page allocation policy — the design decision of §3.3.
//!
//! The paper's argument: general-purpose OSes allocate large pages
//! on demand with reservation heuristics (Navarro et al.), but an OpenMP
//! job usually owns its node for the whole run, so the runtime can simply
//! **preallocate** all shared data from a boot-reserved hugetlbfs pool at
//! startup — simpler, lower latency, and immune to fragmentation.
//! [`PagePolicy`] selects what backs the shared heap; [`PopulatePolicy`]
//! selects when pages are installed (eager startup population is the
//! paper's choice; demand faulting is kept for the ablation A1).

use lpomp_vm::{Arch, MMArch, PageSize, Populate};

/// What page size backs the shared data region.
///
/// `Small4K` and `Large2M` are the historical names for ladder ranks 0
/// and 1 — on the x86-64-2007 architecture exactly the paper's 4 KB and
/// 2 MB policies. [`PagePolicy::Rung`] addresses any rank of the
/// machine's translation-architecture ladder, which is how the 1 GB and
/// ARM64-granule extension sweeps select their sizes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PagePolicy {
    /// Base-granule pages everywhere (ladder rank 0; 4 KB on x86-64 —
    /// the baseline).
    Small4K,
    /// Rung-1 pages for the whole shared heap (2 MB on x86-64 — the
    /// paper's system).
    Large2M,
    /// An explicit ladder rank of the machine's architecture (rank 0 =
    /// base granule). `Rung(0)`/`Rung(1)` behave exactly like
    /// [`PagePolicy::Small4K`]/[`PagePolicy::Large2M`].
    Rung(u8),
    /// §6 future work: rung-1 pages for allocations of at least
    /// `threshold_bytes`, base-granule pages for smaller ones.
    Mixed {
        /// Allocations at or above this size go to large pages.
        threshold_bytes: u64,
    },
}

impl PagePolicy {
    /// Ladder rank of the primary heap region's page size.
    pub fn rank(self) -> usize {
        match self {
            PagePolicy::Small4K => 0,
            PagePolicy::Large2M | PagePolicy::Mixed { .. } => 1,
            PagePolicy::Rung(r) => r as usize,
        }
    }

    /// Page size of the *primary* heap region under this policy on the
    /// given translation architecture.
    ///
    /// # Panics
    /// Panics when the policy's rank is off `arch`'s ladder.
    pub fn heap_page_size_on(self, arch: Arch) -> PageSize {
        let rank = self.rank();
        arch.ladder()
            .get(rank)
            .unwrap_or_else(|| panic!("policy rung {rank} is off the {} ladder", arch.name()))
            .size
    }

    /// Page size of the primary heap region, read against the
    /// x86-64-2007 ladder (the pre-ladder API; prefer
    /// [`Self::heap_page_size_on`]).
    pub fn heap_page_size(self) -> PageSize {
        self.heap_page_size_on(Arch::X86_64_2007)
    }

    /// Whether a hugetlbfs pool must be reserved.
    pub fn needs_huge_pool(self) -> bool {
        self.rank() > 0
    }

    /// Short label used in figure output and store fingerprints ("4KB" /
    /// "2MB" / "mixed"; explicit rungs are labelled by rank, because the
    /// byte size a rank denotes depends on the architecture).
    pub fn label(self) -> &'static str {
        match self {
            PagePolicy::Small4K => "4KB",
            PagePolicy::Large2M => "2MB",
            PagePolicy::Mixed { .. } => "mixed",
            PagePolicy::Rung(0) => "rung0",
            PagePolicy::Rung(1) => "rung1",
            PagePolicy::Rung(2) => "rung2",
            PagePolicy::Rung(_) => "rung3",
        }
    }
}

impl std::fmt::Display for PagePolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// When shared-heap pages are installed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PopulatePolicy {
    /// Install every page at startup (the paper's preallocation).
    Prefault,
    /// Demand-fault on first touch (ablation A1 baseline).
    OnDemand,
}

impl PopulatePolicy {
    /// Convert to the VM layer's populate mode.
    pub fn as_vm(self) -> Populate {
        match self {
            PopulatePolicy::Prefault => Populate::Eager,
            PopulatePolicy::OnDemand => Populate::OnDemand,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heap_page_sizes() {
        assert_eq!(PagePolicy::Small4K.heap_page_size(), PageSize::Small4K);
        assert_eq!(PagePolicy::Large2M.heap_page_size(), PageSize::Large2M);
        assert_eq!(
            PagePolicy::Mixed {
                threshold_bytes: 1 << 20
            }
            .heap_page_size(),
            PageSize::Large2M
        );
    }

    #[test]
    fn pool_requirement() {
        assert!(!PagePolicy::Small4K.needs_huge_pool());
        assert!(PagePolicy::Large2M.needs_huge_pool());
        assert!(!PagePolicy::Rung(0).needs_huge_pool());
        assert!(PagePolicy::Rung(2).needs_huge_pool());
    }

    #[test]
    fn rungs_resolve_against_the_arch_ladder() {
        // Ranks 0/1 are the classic aliases on x86-64-2007…
        assert_eq!(
            PagePolicy::Rung(0).heap_page_size_on(Arch::X86_64_2007),
            PageSize::Small4K
        );
        assert_eq!(
            PagePolicy::Rung(1).heap_page_size_on(Arch::X86_64_2007),
            PageSize::Large2M
        );
        // …while higher ranks and other architectures resolve to their
        // own ladders.
        assert_eq!(
            PagePolicy::Rung(2).heap_page_size_on(Arch::X86_64_MODERN),
            PageSize::Page1G
        );
        assert_eq!(
            PagePolicy::Small4K.heap_page_size_on(Arch::ARM64_16K),
            PageSize::Page16K
        );
        assert_eq!(
            PagePolicy::Rung(1).heap_page_size_on(Arch::ARM64_4K),
            PageSize::Page64K
        );
        assert_eq!(PagePolicy::Rung(2).label(), "rung2");
    }

    #[test]
    #[should_panic(expected = "off the")]
    fn off_ladder_rung_panics() {
        let _ = PagePolicy::Rung(2).heap_page_size_on(Arch::X86_64_2007);
    }

    #[test]
    fn labels() {
        assert_eq!(PagePolicy::Small4K.label(), "4KB");
        assert_eq!(PagePolicy::Large2M.to_string(), "2MB");
        assert_eq!(
            PagePolicy::Mixed {
                threshold_bytes: 1024
            }
            .label(),
            "mixed"
        );
    }

    #[test]
    fn populate_mapping() {
        assert_eq!(PopulatePolicy::Prefault.as_vm(), Populate::Eager);
        assert_eq!(PopulatePolicy::OnDemand.as_vm(), Populate::OnDemand);
    }
}
