//! The large-page allocation policy — the design decision of §3.3.
//!
//! The paper's argument: general-purpose OSes allocate large pages
//! on demand with reservation heuristics (Navarro et al.), but an OpenMP
//! job usually owns its node for the whole run, so the runtime can simply
//! **preallocate** all shared data from a boot-reserved hugetlbfs pool at
//! startup — simpler, lower latency, and immune to fragmentation.
//! [`PagePolicy`] selects what backs the shared heap; [`PopulatePolicy`]
//! selects when pages are installed (eager startup population is the
//! paper's choice; demand faulting is kept for the ablation A1).

use lpomp_vm::{PageSize, Populate};

/// What page size backs the shared data region.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PagePolicy {
    /// Traditional 4 KB pages everywhere (the baseline).
    Small4K,
    /// 2 MB pages for the whole shared heap (the paper's system).
    Large2M,
    /// §6 future work: 2 MB pages for allocations of at least
    /// `threshold_bytes`, 4 KB pages for smaller ones.
    Mixed {
        /// Allocations at or above this size go to large pages.
        threshold_bytes: u64,
    },
}

impl PagePolicy {
    /// Page size of the *primary* heap region under this policy.
    pub fn heap_page_size(self) -> PageSize {
        match self {
            PagePolicy::Small4K => PageSize::Small4K,
            PagePolicy::Large2M | PagePolicy::Mixed { .. } => PageSize::Large2M,
        }
    }

    /// Whether a hugetlbfs pool must be reserved.
    pub fn needs_huge_pool(self) -> bool {
        !matches!(self, PagePolicy::Small4K)
    }

    /// Short label used in figure output ("4KB" / "2MB" / "mixed").
    pub fn label(self) -> &'static str {
        match self {
            PagePolicy::Small4K => "4KB",
            PagePolicy::Large2M => "2MB",
            PagePolicy::Mixed { .. } => "mixed",
        }
    }
}

impl std::fmt::Display for PagePolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// When shared-heap pages are installed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PopulatePolicy {
    /// Install every page at startup (the paper's preallocation).
    Prefault,
    /// Demand-fault on first touch (ablation A1 baseline).
    OnDemand,
}

impl PopulatePolicy {
    /// Convert to the VM layer's populate mode.
    pub fn as_vm(self) -> Populate {
        match self {
            PopulatePolicy::Prefault => Populate::Eager,
            PopulatePolicy::OnDemand => Populate::OnDemand,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heap_page_sizes() {
        assert_eq!(PagePolicy::Small4K.heap_page_size(), PageSize::Small4K);
        assert_eq!(PagePolicy::Large2M.heap_page_size(), PageSize::Large2M);
        assert_eq!(
            PagePolicy::Mixed {
                threshold_bytes: 1 << 20
            }
            .heap_page_size(),
            PageSize::Large2M
        );
    }

    #[test]
    fn pool_requirement() {
        assert!(!PagePolicy::Small4K.needs_huge_pool());
        assert!(PagePolicy::Large2M.needs_huge_pool());
    }

    #[test]
    fn labels() {
        assert_eq!(PagePolicy::Small4K.label(), "4KB");
        assert_eq!(PagePolicy::Large2M.to_string(), "2MB");
        assert_eq!(
            PagePolicy::Mixed {
                threshold_bytes: 1024
            }
            .label(),
            "mixed"
        );
    }

    #[test]
    fn populate_mapping() {
        assert_eq!(PopulatePolicy::Prefault.as_vm(), Populate::Eager);
        assert_eq!(PopulatePolicy::OnDemand.as_vm(), Populate::OnDemand);
    }
}
