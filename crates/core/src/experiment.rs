//! The experiment runner behind every figure and table.
//!
//! One [`run_sim`] call = one bar/point of the paper's evaluation: an
//! application at a class, on a platform, under a page policy, at a
//! thread count. The returned [`RunRecord`] carries the simulated run
//! time, the full aggregate counter sheet (the OProfile measurements of
//! Figs. 3 and 5), and the checksum/verification status.

use crate::policy::{PagePolicy, PopulatePolicy};
use crate::system::{System, SystemConfig};
use lpomp_machine::MachineConfig;
use lpomp_npb::{AppKind, Class};
use lpomp_prof::{Counters, Event};

/// The result of one simulated benchmark run.
///
/// `PartialEq` compares every field (including bit-exact `f64`s): two
/// records are equal iff the simulations behaved identically. The
/// parallel sweep's determinism tests rely on this.
#[derive(Clone, Debug, PartialEq)]
pub struct RunRecord {
    /// Application.
    pub app: AppKind,
    /// Problem class.
    pub class: Class,
    /// Platform name ("Opteron" / "Xeon").
    pub machine: &'static str,
    /// Page policy label ("4KB" / "2MB" / "mixed").
    pub policy: PagePolicy,
    /// Thread count.
    pub threads: usize,
    /// Simulated run time in seconds (critical path / clock rate).
    pub seconds: f64,
    /// Critical-path cycles.
    pub cycles: u64,
    /// Aggregate hardware counters across threads.
    pub counters: Counters,
    /// Benchmark checksum.
    pub checksum: f64,
    /// Whether the checksum matched the serial reference (only evaluated
    /// when verification was requested).
    pub verified: Option<bool>,
}

impl RunRecord {
    /// Aggregate DTLB misses (Fig. 5's quantity).
    pub fn dtlb_misses(&self) -> u64 {
        self.counters.get(Event::DtlbMisses)
    }

    /// Aggregate ITLB misses.
    pub fn itlb_misses(&self) -> u64 {
        self.counters.get(Event::ItlbMisses)
    }

    /// ITLB misses per second of run time (Fig. 3's quantity).
    pub fn itlb_miss_rate(&self) -> f64 {
        if self.seconds == 0.0 {
            0.0
        } else {
            self.itlb_misses() as f64 / self.seconds
        }
    }
}

/// Options for [`run_sim`].
#[derive(Clone, Copy, Debug)]
pub struct RunOpts {
    /// Verify the checksum against the serial reference (costs one
    /// native serial execution of the kernel).
    pub verify: bool,
    /// Populate policy (the paper's default is prefault).
    pub populate: PopulatePolicy,
    /// Attach the AutoNUMA-style balancing daemon (extension E3; only
    /// meaningful on a machine with a NUMA configuration).
    pub numa_daemon: Option<lpomp_vm::NumaDaemonConfig>,
}

impl Default for RunOpts {
    fn default() -> Self {
        RunOpts {
            verify: false,
            populate: PopulatePolicy::Prefault,
            numa_daemon: None,
        }
    }
}

/// Run one simulated benchmark configuration.
pub fn run_sim(
    app: AppKind,
    class: Class,
    machine: MachineConfig,
    policy: PagePolicy,
    threads: usize,
    opts: RunOpts,
) -> RunRecord {
    let machine_name = machine.name;
    let mut kernel = app.build(class);
    let cfg = SystemConfig {
        machine,
        policy,
        populate: opts.populate,
        threads,
        quantum: lpomp_runtime::DEFAULT_QUANTUM,
        private_heap: false,
        khugepaged: None,
        numa_daemon: opts.numa_daemon,
    };
    let mut sys = System::build(&cfg, kernel.as_mut())
        .unwrap_or_else(|e| panic!("{app} {class} system build failed: {e}"));
    let checksum = kernel.run(&mut sys.team);
    let verified = opts.verify.then(|| kernel.verify(checksum));
    let cycles = sys.team.elapsed_cycles();
    RunRecord {
        app,
        class,
        machine: machine_name,
        policy,
        threads,
        seconds: sys.team.engine().unwrap().machine.cost().seconds(cycles),
        cycles,
        counters: sys.team.aggregate_counters(),
        checksum,
        verified,
    }
}

/// The thread counts of the paper's Fig. 4 for a platform: 1, 2, 4 on the
/// Opteron; 1, 2, 4, 8 (hyper-threading) on the Xeon.
pub fn figure4_thread_counts(machine: &MachineConfig) -> Vec<usize> {
    let mut t = vec![1, 2, 4];
    if machine.contexts() >= 8 {
        t.push(8);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use lpomp_machine::{opteron_2x2, xeon_2x2_ht};

    #[test]
    fn run_sim_produces_sane_record() {
        let r = run_sim(
            AppKind::Cg,
            Class::S,
            opteron_2x2(),
            PagePolicy::Small4K,
            2,
            RunOpts {
                verify: true,
                ..Default::default()
            },
        );
        assert_eq!(r.machine, "Opteron");
        assert_eq!(r.verified, Some(true));
        assert!(r.seconds > 0.0);
        assert!(r.cycles > 0);
        assert!(r.dtlb_misses() > 0);
    }

    #[test]
    fn thread_counts_per_platform() {
        assert_eq!(figure4_thread_counts(&opteron_2x2()), vec![1, 2, 4]);
        assert_eq!(figure4_thread_counts(&xeon_2x2_ht()), vec![1, 2, 4, 8]);
    }

    #[test]
    fn large_pages_reduce_cg_dtlb_misses_and_time() {
        // The paper's core claim at test scale: CG with 2 MB pages takes
        // fewer DTLB misses and no more time than with 4 KB pages.
        let small = run_sim(
            AppKind::Cg,
            Class::S,
            opteron_2x2(),
            PagePolicy::Small4K,
            4,
            RunOpts::default(),
        );
        let large = run_sim(
            AppKind::Cg,
            Class::S,
            opteron_2x2(),
            PagePolicy::Large2M,
            4,
            RunOpts::default(),
        );
        assert!(
            large.dtlb_misses() * 2 < small.dtlb_misses(),
            "misses: 2MB {} vs 4KB {}",
            large.dtlb_misses(),
            small.dtlb_misses()
        );
        assert!(large.seconds <= small.seconds * 1.01);
        assert_eq!(large.checksum, small.checksum);
    }

    #[test]
    fn ep_is_page_size_insensitive() {
        // The control: EP touches almost no memory, so policies tie.
        let small = run_sim(
            AppKind::Ep,
            Class::S,
            opteron_2x2(),
            PagePolicy::Small4K,
            4,
            RunOpts::default(),
        );
        let large = run_sim(
            AppKind::Ep,
            Class::S,
            opteron_2x2(),
            PagePolicy::Large2M,
            4,
            RunOpts::default(),
        );
        let delta = (small.seconds - large.seconds).abs() / small.seconds;
        assert!(delta < 0.01, "EP moved {delta:.3} with page size");
    }
}
