//! The experiment runner behind every figure and table.
//!
//! One [`run_sim`] call = one bar/point of the paper's evaluation: an
//! application at a class, on a platform, under a page policy, at a
//! thread count. The returned [`RunRecord`] carries the simulated run
//! time, the full aggregate counter sheet (the OProfile measurements of
//! Figs. 3 and 5), and the checksum/verification status.
//!
//! [`run_system`] is the general form: it takes a [`SystemBuilder`], so
//! any configuration axis (daemons, NUMA, profiling) can drive a run —
//! and a profiling builder additionally fills the record's per-region
//! sheet and trace.

use crate::policy::PagePolicy;
use crate::system::SystemBuilder;
use lpomp_machine::MachineConfig;
use lpomp_npb::{AppKind, Class};
use lpomp_prof::{Counters, Event, ProfileSheet};

/// The result of one simulated benchmark run.
///
/// `PartialEq` compares every field (including bit-exact `f64`s): two
/// records are equal iff the simulations behaved identically. The
/// parallel sweep's determinism tests rely on this.
#[derive(Clone, Debug, PartialEq)]
pub struct RunRecord {
    /// Application.
    pub app: AppKind,
    /// Problem class.
    pub class: Class,
    /// Platform name ("Opteron" / "Xeon").
    pub machine: &'static str,
    /// Page policy label ("4KB" / "2MB" / "mixed").
    pub policy: PagePolicy,
    /// Thread count.
    pub threads: usize,
    /// Simulated run time in seconds (critical path / clock rate).
    pub seconds: f64,
    /// Critical-path cycles.
    pub cycles: u64,
    /// Aggregate hardware counters across threads.
    pub counters: Counters,
    /// Benchmark checksum.
    pub checksum: f64,
    /// Whether the checksum matched the serial reference (only evaluated
    /// when verification was requested).
    pub verified: Option<bool>,
    /// Per-region × per-thread attribution (builders with
    /// [`lpomp_prof::ProfileSpec::Regions`] or `Trace`).
    pub regions: Option<ProfileSheet>,
    /// Chrome `trace_event` JSON of the run (builders with
    /// [`lpomp_prof::ProfileSpec::Trace`]).
    pub trace: Option<String>,
    /// Which backend produced the record ([`crate::BackendKind::label`]):
    /// `"cycle"` or `"analytic"`.
    pub backend: &'static str,
}

impl RunRecord {
    /// Aggregate DTLB misses (Fig. 5's quantity).
    pub fn dtlb_misses(&self) -> u64 {
        self.counters.get(Event::DtlbMisses)
    }

    /// Aggregate ITLB misses.
    pub fn itlb_misses(&self) -> u64 {
        self.counters.get(Event::ItlbMisses)
    }

    /// ITLB misses per second of run time (Fig. 3's quantity).
    pub fn itlb_miss_rate(&self) -> f64 {
        if self.seconds == 0.0 {
            0.0
        } else {
            self.itlb_misses() as f64 / self.seconds
        }
    }
}

/// Run-scoped options for [`run_sim`] / [`run_system`] — what to do
/// *around* the run, not how to configure the system (that is the
/// [`SystemBuilder`]'s job).
#[derive(Clone, Copy, Debug, Default)]
pub struct RunOpts {
    /// Verify the checksum against the serial reference (costs one
    /// native serial execution of the kernel).
    pub verify: bool,
}

/// Run one simulated benchmark on a fully configured system builder —
/// the general runner behind [`run_sim`]. Page policy, population,
/// daemons, NUMA and profiling all come from the builder; the record's
/// `regions`/`trace` fields are filled when the builder enables
/// profiling.
pub fn run_system(app: AppKind, class: Class, builder: &SystemBuilder, opts: RunOpts) -> RunRecord {
    let cfg = builder.config();
    let machine_name = cfg.machine.name;
    let policy = cfg.policy;
    let threads = cfg.threads;
    let mut kernel = app.build(class);
    let mut sys = builder
        .build(kernel.as_mut())
        .unwrap_or_else(|e| panic!("{app} {class} system build failed: {e}"));
    let checksum = kernel.run(&mut sys.team);
    let verified = opts.verify.then(|| kernel.verify(checksum));
    let cycles = sys.team.elapsed_cycles();
    let seconds = sys.team.engine().unwrap().machine.cost().seconds(cycles);
    RunRecord {
        app,
        class,
        machine: machine_name,
        policy,
        threads,
        seconds,
        cycles,
        counters: sys.team.aggregate_counters(),
        checksum,
        verified,
        regions: sys.team.region_sheet(),
        trace: sys.team.trace_json(),
        backend: crate::backend::BackendKind::CycleExact.label(),
    }
}

/// Run one simulated benchmark configuration (the paper's shape: a
/// platform, a page policy, a thread count, startup prefaulting).
pub fn run_sim(
    app: AppKind,
    class: Class,
    machine: MachineConfig,
    policy: PagePolicy,
    threads: usize,
    opts: RunOpts,
) -> RunRecord {
    let builder = SystemBuilder::new(machine).policy(policy).threads(threads);
    run_system(app, class, &builder, opts)
}

/// The thread counts of the paper's Fig. 4 for a platform: 1, 2, 4 on the
/// Opteron; 1, 2, 4, 8 (hyper-threading) on the Xeon.
pub fn figure4_thread_counts(machine: &MachineConfig) -> Vec<usize> {
    let mut t = vec![1, 2, 4];
    if machine.contexts() >= 8 {
        t.push(8);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use lpomp_machine::{opteron_2x2, xeon_2x2_ht};

    #[test]
    fn run_sim_produces_sane_record() {
        let r = run_sim(
            AppKind::Cg,
            Class::S,
            opteron_2x2(),
            PagePolicy::Small4K,
            2,
            RunOpts { verify: true },
        );
        assert_eq!(r.machine, "Opteron");
        assert_eq!(r.verified, Some(true));
        assert!(r.seconds > 0.0);
        assert!(r.cycles > 0);
        assert!(r.dtlb_misses() > 0);
    }

    #[test]
    fn run_system_fills_regions_and_trace_when_profiling() {
        use crate::system::System;
        use lpomp_prof::ProfileSpec;
        let base = System::builder(opteron_2x2())
            .policy(PagePolicy::Small4K)
            .threads(2);
        let plain = run_system(AppKind::Cg, Class::S, &base, RunOpts::default());
        assert!(plain.regions.is_none() && plain.trace.is_none());
        let traced = run_system(
            AppKind::Cg,
            Class::S,
            &base.clone().profile(ProfileSpec::Trace),
            RunOpts::default(),
        );
        // Profiling observes without perturbing: identical run otherwise.
        assert_eq!(plain.cycles, traced.cycles);
        assert_eq!(plain.counters, traced.counters);
        assert_eq!(plain.checksum, traced.checksum);
        let sheet = traced.regions.expect("regions requested");
        assert_eq!(sheet.total(), traced.counters, "conservation");
        assert!(sheet.by_name("rt:barrier").is_some());
        let json = traced.trace.expect("trace requested");
        let doc = lpomp_prof::parse_json(&json).unwrap();
        assert!(doc.get("traceEvents").is_some());
    }

    #[test]
    fn thread_counts_per_platform() {
        assert_eq!(figure4_thread_counts(&opteron_2x2()), vec![1, 2, 4]);
        assert_eq!(figure4_thread_counts(&xeon_2x2_ht()), vec![1, 2, 4, 8]);
    }

    #[test]
    fn large_pages_reduce_cg_dtlb_misses_and_time() {
        // The paper's core claim at test scale: CG with 2 MB pages takes
        // fewer DTLB misses and no more time than with 4 KB pages.
        let small = run_sim(
            AppKind::Cg,
            Class::S,
            opteron_2x2(),
            PagePolicy::Small4K,
            4,
            RunOpts::default(),
        );
        let large = run_sim(
            AppKind::Cg,
            Class::S,
            opteron_2x2(),
            PagePolicy::Large2M,
            4,
            RunOpts::default(),
        );
        assert!(
            large.dtlb_misses() * 2 < small.dtlb_misses(),
            "misses: 2MB {} vs 4KB {}",
            large.dtlb_misses(),
            small.dtlb_misses()
        );
        assert!(large.seconds <= small.seconds * 1.01);
        assert_eq!(large.checksum, small.checksum);
    }

    #[test]
    fn ep_is_page_size_insensitive() {
        // The control: EP touches almost no memory, so policies tie.
        let small = run_sim(
            AppKind::Ep,
            Class::S,
            opteron_2x2(),
            PagePolicy::Small4K,
            4,
            RunOpts::default(),
        );
        let large = run_sim(
            AppKind::Ep,
            Class::S,
            opteron_2x2(),
            PagePolicy::Large2M,
            4,
            RunOpts::default(),
        );
        let delta = (small.seconds - large.seconds).abs() / small.seconds;
        assert!(delta < 0.01, "EP moved {delta:.3} with page size");
    }
}
