//! Work-stealing parallel execution of independent simulation runs.
//!
//! Every configuration in a sweep builds its own [`crate::run_sim`]
//! machine and address space, so runs share no mutable state and are
//! individually deterministic. That makes config-level parallelism free
//! of ordering hazards: workers pull the next un-run grid index from a
//! shared atomic counter (cheap work stealing — run times vary by an
//! order of magnitude across apps and thread counts, so static
//! partitioning would leave workers idle), and results are reassembled
//! in grid order afterwards. The output is therefore *byte-identical*
//! to a serial loop for any worker count.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Environment variable overriding the worker count used by
/// [`default_workers`] (and thus by [`crate::SweepSpec::run`] and the
/// figure binaries). Values below 1 or unparsable are ignored.
pub const WORKERS_ENV: &str = "LPOMP_WORKERS";

/// The worker count to use when the caller expresses no preference:
/// `LPOMP_WORKERS` if set to a positive integer, else the host's
/// available parallelism.
pub fn default_workers() -> usize {
    if let Ok(v) = std::env::var(WORKERS_ENV) {
        match v.trim().parse::<usize>() {
            Ok(n) if n >= 1 => return n,
            _ => eprintln!("ignoring {WORKERS_ENV}={v:?}: expected a positive integer"),
        }
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Map `f` over `items` on `workers` scoped threads, returning results
/// in input order (index-exact, as if mapped serially).
///
/// `f` receives `(index, &item)`. Scheduling is dynamic: each worker
/// repeatedly claims the lowest unclaimed index. A panic in `f`
/// propagates to the caller after the remaining workers drain.
pub fn par_map<T, R, F>(items: &[T], workers: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let n = items.len();
    let workers = workers.max(1).min(n.max(1));
    if workers == 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        local.push((i, f(i, &items[i])));
                    }
                    local
                })
            })
            .collect();
        for h in handles {
            for (i, r) in h.join().expect("parallel worker panicked") {
                slots[i] = Some(r);
            }
        }
    });
    slots
        .into_iter()
        .map(|o| o.expect("every index claimed exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<usize> = (0..100).collect();
        for workers in [1, 2, 8, 200] {
            let out = par_map(&items, workers, |i, &x| {
                assert_eq!(i, x);
                x * 3
            });
            assert_eq!(out, (0..100).map(|x| x * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn par_map_empty_and_singleton() {
        let empty: Vec<u32> = vec![];
        assert!(par_map(&empty, 8, |_, &x| x).is_empty());
        assert_eq!(par_map(&[7u32], 8, |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn par_map_uneven_work_still_ordered() {
        // Make low indices slow so late indices finish first.
        let items: Vec<u64> = (0..32).collect();
        let out = par_map(&items, 4, |_, &x| {
            if x < 4 {
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            x
        });
        assert_eq!(out, items);
    }
}
