//! System assembly: machine + OS objects + runtime = a ready-to-run team.
//!
//! This is the modified Omni/SCASH of the paper's §3.3, end to end:
//!
//! 1. build the platform model (`lpomp-machine`);
//! 2. map the application **code segment** (Table 2 binary size, 4 KB
//!    pages — §4.3 shows ITLB misses are negligible so code stays small-
//!    paged);
//! 3. reserve the **hugetlbfs pool** at "boot" and create the shared map
//!    file the node's processes share (for the 2 MB policy), or an
//!    ordinary small-page shared file (4 KB baseline);
//! 4. map the shared heap, **prefaulting** it per the paper's
//!    preallocation argument (or demand-faulting for the ablation);
//! 5. map the 4 KB-paged **mailbox file** for the intra-node message
//!    layer;
//! 6. hand the kernel a region allocator (the Omni global-array
//!    transformation target) and build the simulated fork-join team.

use crate::policy::{PagePolicy, PopulatePolicy};
use lpomp_machine::{AsidMode, CodeWalker, Machine, MachineConfig, NumaConfig, NumaPlacement};
use lpomp_npb::{verify_close, AppKind, Class, CodeProfile, Kernel};
use lpomp_prof::{Counters, ProfileSpec};
use lpomp_runtime::{
    run_tenants, BumpAllocator, Schedule, SimEngine, StealPolicy, Team, TenantTask, DEFAULT_QUANTUM,
};
use lpomp_vm::{
    promote_region, AddressSpace, Arch, Backing, HugePool, KhugepagedConfig, MMArch, NodePolicy,
    NumaDaemonConfig, PromotionReport, PteFlags, SharedSegment, ShmFs, VirtAddr, VmResult,
};
use std::sync::Arc;

/// Fixed base of the code segment (conventional ELF text base).
pub const CODE_BASE: VirtAddr = VirtAddr(0x40_0000);
/// Shared-region slack beyond the kernel's declared footprint.
const HEAP_SLACK_NUM: u64 = 11;
const HEAP_SLACK_DEN: u64 = 10;
/// Size of the 4 KB region backing small allocations under `Mixed`.
const MIXED_SMALL_REGION: u64 = 16 * 1024 * 1024;
/// Mailbox file size (paper: 32 slots × 1 KB per channel, 8 processes).
const MAILBOX_BYTES: u64 = 8 * 8 * 32 * 1024;
/// Default tenant timeslice: 1 ms at the platforms' 2 GHz clock — the
/// order of a CFS scheduling period for a busy runqueue.
pub const DEFAULT_TIMESLICE: u64 = 2_000_000;

/// One tenant of a multi-tenant machine: which kernel it runs and with
/// how many threads.
#[derive(Clone, Debug)]
pub struct TenantSpec {
    /// Report label ("batch", "latency-0", ...).
    pub name: String,
    /// The NPB kernel this tenant runs.
    pub app: AppKind,
    /// Problem class.
    pub class: Class,
    /// Team size (gang-scheduled: all threads run together or not at
    /// all).
    pub threads: usize,
}

impl TenantSpec {
    /// Convenience constructor.
    pub fn new(name: &str, app: AppKind, class: Class, threads: usize) -> Self {
        TenantSpec {
            name: name.to_owned(),
            app,
            class,
            threads,
        }
    }
}

/// Multi-tenant configuration: the tenants and how they are scheduled.
#[derive(Clone, Debug)]
pub struct TenancyConfig {
    /// The colocated tenants, scheduled round-robin in spec order.
    /// Tenant `i` gets ASID `i`.
    pub tenants: Vec<TenantSpec>,
    /// Slice length in cycles.
    pub timeslice_cycles: u64,
    /// TLB handling across context switches.
    pub asid_mode: AsidMode,
    /// When non-zero, a read-only "shared library" segment of this many
    /// bytes (4 KB pages, one physical image) is mapped into every
    /// tenant right after its code segment and included in its
    /// instruction-fetch span.
    pub shared_lib_bytes: u64,
}

impl Default for TenancyConfig {
    fn default() -> Self {
        TenancyConfig {
            tenants: Vec::new(),
            timeslice_cycles: DEFAULT_TIMESLICE,
            asid_mode: AsidMode::Tagged,
            shared_lib_bytes: 0,
        }
    }
}

/// Configuration of one simulated system instance.
#[derive(Clone, Debug)]
pub struct SystemConfig {
    /// Platform preset.
    pub machine: MachineConfig,
    /// Page size policy for the shared heap.
    pub policy: PagePolicy,
    /// Startup preallocation vs demand faulting.
    pub populate: PopulatePolicy,
    /// Logical threads.
    pub threads: usize,
    /// Simulated-engine interleaving quantum (iterations).
    pub quantum: usize,
    /// Back the heap with *private anonymous* memory instead of a shared
    /// map file. Required for [`System::promote_heap`] (the THP extension
    /// E2): the kernel never collapses file-backed pages.
    pub private_heap: bool,
    /// Attach an incremental khugepaged daemon to the engine: a budgeted
    /// scan runs at every barrier, collapsing chunks (and compacting when
    /// fragmented) instead of the stop-the-world
    /// [`System::promote_heap`].
    pub khugepaged: Option<KhugepagedConfig>,
    /// Attach an AutoNUMA-style balancing daemon: hinting samples are
    /// recorded during execution and pages with persistently remote
    /// accessors are migrated at barriers. Only meaningful when the
    /// machine has a NUMA configuration.
    pub numa_daemon: Option<NumaDaemonConfig>,
    /// Attach the region-attribution profiler (and, for
    /// [`ProfileSpec::Trace`], the timeline recorder). Observational
    /// only: profiled runs are cycle-identical to unprofiled ones.
    pub profile: ProfileSpec,
    /// Multi-tenant mode: colocate several processes on the one machine
    /// under a timeslice scheduler (build with
    /// [`SystemBuilder::build_tenants`]). `None` — the classic
    /// single-process system. All other axes (policy, populate, daemons,
    /// profile) apply to *every* tenant; `threads` is overridden
    /// per-tenant by each [`TenantSpec`].
    pub tenancy: Option<TenancyConfig>,
    /// Loop-schedule override consulted by kernels that schedule through
    /// [`Team::schedule_or`] (the iterative phases of the scheduler-study
    /// kernels). `None` leaves every loop on its kernel-chosen default,
    /// so classic systems are bit-identical to pre-override builds.
    pub schedule: Option<Schedule>,
    /// Work-stealing knobs for [`Schedule::Hierarchical`] loops: remote
    /// batch size and the two scheduler↔memory negotiation directions.
    pub steal: StealPolicy,
}

/// Fluent assembly of a simulated system — the one front door to every
/// configuration axis (page policy, population, daemons, NUMA,
/// profiling). Start from [`System::builder`]:
///
/// ```
/// use lpomp_core::{PagePolicy, System};
/// use lpomp_machine::opteron_2x2;
/// use lpomp_npb::{AppKind, Class};
///
/// let mut kernel = AppKind::Cg.build(Class::S);
/// let mut sys = System::builder(opteron_2x2())
///     .threads(4)
///     .policy(PagePolicy::Large2M)
///     .build(kernel.as_mut())
///     .unwrap();
/// let checksum = kernel.run(&mut sys.team);
/// assert!(kernel.verify(checksum));
/// ```
///
/// Defaults: 1 thread, 4 KB pages, startup prefaulting, no daemons, no
/// profiling — each method overrides one axis and returns the builder.
#[derive(Clone, Debug)]
pub struct SystemBuilder {
    cfg: SystemConfig,
}

impl SystemBuilder {
    /// A builder with the defaults above on the given platform.
    pub fn new(machine: MachineConfig) -> Self {
        SystemBuilder {
            cfg: SystemConfig {
                machine,
                policy: PagePolicy::Small4K,
                populate: PopulatePolicy::Prefault,
                threads: 1,
                quantum: DEFAULT_QUANTUM,
                private_heap: false,
                khugepaged: None,
                numa_daemon: None,
                profile: ProfileSpec::Off,
                tenancy: None,
                schedule: None,
                steal: StealPolicy::default(),
            },
        }
    }

    /// Number of logical threads.
    pub fn threads(mut self, threads: usize) -> Self {
        self.cfg.threads = threads;
        self
    }

    /// Page-size policy for the shared heap.
    pub fn policy(mut self, policy: PagePolicy) -> Self {
        self.cfg.policy = policy;
        self
    }

    /// Re-equip the platform with a different translation architecture:
    /// the machine's data and instruction TLBs are swapped for the
    /// canonical geometry of `arch` ([`lpomp_tlb::default_tlbs`]), which
    /// also changes the page-table shape, the page-size ladder and the
    /// walk costs. A no-op when the machine already runs `arch`, so
    /// `.arch(Arch::X86_64_2007)` on a paper preset preserves its exact
    /// platform TLBs.
    pub fn arch(mut self, arch: Arch) -> Self {
        if self.cfg.machine.arch() != arch {
            let (dtlb, itlb) = lpomp_tlb::default_tlbs(arch);
            self.cfg.machine.dtlb = dtlb;
            self.cfg.machine.itlb = itlb;
        }
        self
    }

    /// Back the shared heap with ladder rank `rank` of the machine's
    /// translation architecture — the rank-addressed replacement for the
    /// implicit 4 KB/2 MB policy plumbing. `page_size(0)` is the
    /// base-granule baseline, `page_size(1)` the paper's large-page
    /// system; higher ranks select 1 GB pages or ARM64 block sizes where
    /// the architecture has them.
    pub fn page_size(self, rank: u8) -> Self {
        self.policy(PagePolicy::Rung(rank))
    }

    /// Startup preallocation vs demand faulting.
    pub fn populate(mut self, populate: PopulatePolicy) -> Self {
        self.cfg.populate = populate;
        self
    }

    /// Simulated-engine interleaving quantum (iterations).
    pub fn quantum(mut self, quantum: usize) -> Self {
        self.cfg.quantum = quantum;
        self
    }

    /// Back the heap with private anonymous memory (required for
    /// [`System::promote_heap`]; implied by [`Self::thp`]).
    pub fn private_heap(mut self, private: bool) -> Self {
        self.cfg.private_heap = private;
        self
    }

    /// The THP scenario: a 4 KB private anonymous heap that
    /// [`System::promote_heap`] (or the khugepaged daemon) can collapse.
    pub fn thp(self) -> Self {
        self.policy(PagePolicy::Small4K).private_heap(true)
    }

    /// `on`: the THP scenario plus the incremental khugepaged daemon
    /// (default [`KhugepagedConfig`]). `false` detaches the daemon.
    pub fn thp_daemon(mut self, on: bool) -> Self {
        if on {
            self.cfg.khugepaged = Some(KhugepagedConfig::default());
            self.thp()
        } else {
            self.cfg.khugepaged = None;
            self
        }
    }

    /// Attach an incremental khugepaged daemon with an explicit config.
    pub fn khugepaged(mut self, cfg: KhugepagedConfig) -> Self {
        self.cfg.khugepaged = Some(cfg);
        self
    }

    /// Make the platform NUMA (placement policy, node count, PT
    /// replication — see [`NumaConfig`]).
    pub fn numa(mut self, numa: NumaConfig) -> Self {
        self.cfg.machine.numa = Some(numa);
        self
    }

    /// Attach the AutoNUMA-style balancing daemon.
    pub fn numa_daemon(mut self, cfg: NumaDaemonConfig) -> Self {
        self.cfg.numa_daemon = Some(cfg);
        self
    }

    /// Attach the region-attribution profiler ([`ProfileSpec::Regions`])
    /// or the profiler plus timeline ([`ProfileSpec::Trace`]).
    pub fn profile(mut self, spec: ProfileSpec) -> Self {
        self.cfg.profile = spec;
        self
    }

    /// Override the loop schedule of every loop that schedules through
    /// [`Team::schedule_or`] — the front door of the E8 scheduler study
    /// (`Schedule::Hierarchical` vs the topology-blind baselines).
    /// Hardcoded-schedule loops are untouched.
    pub fn schedule(mut self, sched: Schedule) -> Self {
        self.cfg.schedule = Some(sched);
        self
    }

    /// Work-stealing policy for [`Schedule::Hierarchical`] loops (remote
    /// batch size, work-follows-pages, pages-follow-work).
    pub fn steal_policy(mut self, steal: StealPolicy) -> Self {
        self.cfg.steal = steal;
        self
    }

    /// Colocate these tenants on the machine (round-robin, spec order;
    /// tenant `i` gets ASID `i`). Build with [`Self::build_tenants`].
    pub fn tenants(mut self, specs: Vec<TenantSpec>) -> Self {
        self.cfg
            .tenancy
            .get_or_insert_with(TenancyConfig::default)
            .tenants = specs;
        self
    }

    /// Tenant timeslice in cycles (default [`DEFAULT_TIMESLICE`]).
    pub fn timeslice(mut self, cycles: u64) -> Self {
        self.cfg
            .tenancy
            .get_or_insert_with(TenancyConfig::default)
            .timeslice_cycles = cycles;
        self
    }

    /// How the TLBs treat a context switch: keep entries under ASID tags
    /// ([`AsidMode::Tagged`], the default) or flush everything
    /// ([`AsidMode::FlushOnSwitch`], the ablation).
    pub fn asid_mode(mut self, mode: AsidMode) -> Self {
        self.cfg
            .tenancy
            .get_or_insert_with(TenancyConfig::default)
            .asid_mode = mode;
        self
    }

    /// Map one read-only shared-library image of this many bytes into
    /// every tenant (0 disables; see [`TenancyConfig::shared_lib_bytes`]).
    pub fn shared_lib(mut self, bytes: u64) -> Self {
        self.cfg
            .tenancy
            .get_or_insert_with(TenancyConfig::default)
            .shared_lib_bytes = bytes;
        self
    }

    /// Assemble the multi-tenant machine configured by [`Self::tenants`].
    pub fn build_tenants(&self) -> VmResult<MultiSystem> {
        MultiSystem::build(&self.cfg)
    }

    /// The accumulated configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// Unwrap into the plain [`SystemConfig`].
    pub fn into_config(self) -> SystemConfig {
        self.cfg
    }

    /// Assemble the system and run the kernel's `setup` in its heap.
    pub fn build(&self, kernel: &mut dyn Kernel) -> VmResult<System> {
        System::build(&self.cfg, kernel)
    }
}

/// Statistics of system bring-up (the quantities ablation A1 compares).
#[derive(Clone, Copy, Debug, Default)]
pub struct SetupStats {
    /// 2 MB pages reserved in the pool.
    pub huge_pages_reserved: u64,
    /// Pages prefaulted at startup (any size).
    pub pages_prepopulated: u64,
    /// Shared-heap bytes mapped.
    pub heap_bytes: u64,
}

/// A fully assembled system: the simulated team plus bring-up metadata.
pub struct System {
    /// The ready-to-run simulated team.
    pub team: Team,
    /// Bring-up statistics.
    pub setup: SetupStats,
    heap_base: VirtAddr,
}

impl System {
    /// Start a [`SystemBuilder`] on the given platform — the preferred
    /// way to configure a system.
    pub fn builder(machine: MachineConfig) -> SystemBuilder {
        SystemBuilder::new(machine)
    }

    /// Assemble a system and run the kernel's `setup` inside its shared
    /// region. After this, `run` on the kernel with `self.team` executes
    /// the measured benchmark.
    pub fn build(cfg: &SystemConfig, kernel: &mut dyn Kernel) -> VmResult<System> {
        let mut machine = Machine::new(cfg.machine.clone());
        let (aspace, setup, heap_base, walker) =
            Self::build_parts(cfg, kernel, &mut machine, None)?;
        let mut engine = SimEngine::new(machine, aspace, cfg.threads, walker, cfg.quantum);
        if let Some(k) = cfg.khugepaged {
            engine.enable_khugepaged(k);
        }
        if let Some(nd) = cfg.numa_daemon {
            engine.enable_numa_daemon(nd);
        }
        engine.enable_profiling(cfg.profile);
        engine.set_schedule_override(cfg.schedule);
        engine.set_steal_policy(cfg.steal);
        Ok(System {
            team: Team::simulated(engine),
            setup,
            heap_base,
        })
    }

    /// Steps (2)–(6) of bring-up for one process: code segment (plus the
    /// shared-library image when `lib` is given), heap, mailbox, kernel
    /// `setup`, code walker. Frames come from `machine` — for colocated
    /// tenants the *real* machine, so every process carves disjoint
    /// physical memory out of the same per-node buddy pools.
    fn build_parts(
        cfg: &SystemConfig,
        kernel: &mut dyn Kernel,
        machine: &mut Machine,
        lib: Option<&Arc<SharedSegment>>,
    ) -> VmResult<(AddressSpace, SetupStats, VirtAddr, CodeWalker)> {
        let arch = cfg.machine.arch();
        let base = arch.base();
        let mut aspace = AddressSpace::new_for(&mut machine.frames, arch)?;
        let mut setup = SetupStats::default();

        // (2) Code segment: base-granule pages (4 KB on the paper's
        // platforms), always prefaulted (the loader maps the binary up
        // front).
        let code_prof: CodeProfile = kernel.code_profile();
        aspace.mmap_fixed(
            &mut machine.frames,
            CODE_BASE,
            code_prof.code_bytes,
            base,
            PteFlags::rx(),
            Backing::Anonymous,
            lpomp_vm::Populate::Eager,
            "code",
        )?;

        // Optional shared-library image: one physical segment mapped
        // read-only into every tenant, directly after the code segment so
        // the code walker sweeps both. Base-granule pages, eagerly mapped
        // like the code itself.
        if let Some(seg) = lib {
            aspace.mmap_fixed(
                &mut machine.frames,
                CODE_BASE.add(base.round_up(code_prof.code_bytes)),
                seg.len_bytes(),
                base,
                PteFlags::rx(),
                Backing::Shared(Arc::clone(seg)),
                lpomp_vm::Populate::Eager,
                "shared-lib",
            )?;
        }

        // NUMA placement. The code segment above was mapped *before* the
        // node policy is installed, so code frames stay on node 0 (as does
        // the mailbox below: both are small and shared). The heap is where
        // placement matters, and it is placed one of two ways:
        //
        // * **statically**, at segment creation, for the shared (hugetlbfs
        //   or shm) heaps — master-node puts every chunk on node 0,
        //   interleave round-robins placement chunks (clamped up to the
        //   page size: a 2 MB page is indivisible);
        // * **dynamically**, at fault time, for first-touch — which needs
        //   a *private anonymous* heap (shared-segment frames belong to
        //   the segment and are placed when it is created), so under
        //   first-touch the heap is anonymous at the policy's page size.
        //   With startup prefaulting the master thread is the first
        //   toucher of everything, which degenerates to master-node — the
        //   classic OpenMP pitfall; first-touch results use OnDemand.
        let numa = cfg.machine.numa;
        let first_touch = matches!(numa.map(|n| n.placement), Some(NumaPlacement::FirstTouch));
        if let Some(n) = &numa {
            let policy = match n.placement {
                NumaPlacement::MasterNode => NodePolicy::Fixed(0),
                NumaPlacement::Interleave4K => NodePolicy::Interleave { chunk: 4096 },
                NumaPlacement::Interleave2M => NodePolicy::Interleave { chunk: 2 << 20 },
                NumaPlacement::FirstTouch => NodePolicy::FirstTouch,
            };
            aspace.set_node_policy(n.nodes, policy);
        }

        // (3)+(4) Shared heap.
        let heap_bytes = kernel.footprint().data_bytes * HEAP_SLACK_NUM / HEAP_SLACK_DEN;
        // The heap's page size is the policy's rung resolved against the
        // machine's translation architecture (2 MB on x86-64-2007 under
        // the paper's policy; 1 GB / 64 KB / 32 MB under the extension
        // presets).
        let heap_page = cfg.policy.heap_page_size_on(arch);
        // Round to whole chunks of the heap page — or, for base-granule
        // heaps, of the *next* ladder rung — so a base-granule heap can
        // later be collapsed in full by the THP extension.
        let round = heap_page.max(arch.next_rung_above(base).map_or(base, |r| r.size));
        let heap_len = round.round_up(heap_bytes.max(round.bytes()));
        setup.heap_bytes = heap_len;
        let populate = cfg.populate.as_vm();
        let (heap_base, small_base) = if cfg.policy.needs_huge_pool() && first_touch {
            // First-touch large pages: a private anonymous large-paged
            // heap whose pages land on the faulting thread's node.
            let heap_base = aspace.mmap(
                &mut machine.frames,
                heap_len,
                heap_page,
                PteFlags::rw(),
                Backing::Anonymous,
                populate,
                "private-heap",
            )?;
            let small_base = if matches!(cfg.policy, PagePolicy::Mixed { .. }) {
                Some(aspace.mmap(
                    &mut machine.frames,
                    MIXED_SMALL_REGION,
                    base,
                    PteFlags::rw(),
                    Backing::Anonymous,
                    populate,
                    "small-heap",
                )?)
            } else {
                None
            };
            (heap_base, small_base)
        } else if cfg.policy.needs_huge_pool() {
            let pages = heap_page.pages_for(heap_len);
            let seg = match &numa {
                // Static per-node reservation mirrors Linux's per-node
                // `nr_hugepages`, for *every* pooled rung: decide each
                // page's node up front, mirror the split in per-node
                // reservations (gigantic rungs carve aligned runs inside
                // each node's frame range), then deal pages out
                // accordingly.
                Some(n) => {
                    let chunk = n.placement.granularity().max(heap_page.bytes());
                    let nodes = n.nodes as u64;
                    let node_for = |i: u64| ((i * heap_page.bytes() / chunk) % nodes) as usize;
                    let mut per_node = vec![0u64; n.nodes];
                    for i in 0..pages {
                        per_node[node_for(i)] += 1;
                    }
                    let mut pool = HugePool::reserve_per_node_sized(
                        &mut machine.frames,
                        &per_node,
                        heap_page,
                    )?;
                    pool.create_file_on("omni-shared-heap", heap_len, node_for)?
                }
                None => {
                    let mut pool = HugePool::reserve_sized(&mut machine.frames, pages, heap_page)?;
                    pool.create_file("omni-shared-heap", heap_len)?
                }
            };
            setup.huge_pages_reserved = pages;
            let heap_base = aspace.mmap(
                &mut machine.frames,
                heap_len,
                heap_page,
                PteFlags::rw(),
                Backing::Shared(seg),
                populate,
                "shared-heap",
            )?;
            // Under Mixed, add a base-granule region for small allocations.
            let small_base = if matches!(cfg.policy, PagePolicy::Mixed { .. }) {
                let mut shm = ShmFs::with_granule(base);
                let sseg = Self::shm_file(
                    &mut shm,
                    &mut machine.frames,
                    &numa,
                    "omni-small-heap",
                    MIXED_SMALL_REGION,
                )?;
                Some(aspace.mmap(
                    &mut machine.frames,
                    MIXED_SMALL_REGION,
                    base,
                    PteFlags::rw(),
                    Backing::Shared(sseg),
                    populate,
                    "small-heap",
                )?)
            } else {
                None
            };
            (heap_base, small_base)
        } else if cfg.private_heap || first_touch {
            // THP scenario (collapsible later) or first-touch small pages:
            // either way a private anonymous base-granule heap.
            let heap_base = aspace.mmap(
                &mut machine.frames,
                heap_len,
                base,
                PteFlags::rw(),
                Backing::Anonymous,
                populate,
                "private-heap",
            )?;
            debug_assert!(heap_base.is_aligned(round));
            (heap_base, None)
        } else {
            let mut shm = ShmFs::with_granule(base);
            let seg = Self::shm_file(
                &mut shm,
                &mut machine.frames,
                &numa,
                "omni-shared-heap",
                heap_len,
            )?;
            let heap_base = aspace.mmap(
                &mut machine.frames,
                heap_len,
                base,
                PteFlags::rw(),
                Backing::Shared(seg),
                populate,
                "shared-heap",
            )?;
            (heap_base, None)
        };

        // (5) Mailbox file: always base-granule pages (paper §3.3: the
        // message-passing mailboxes stay in 4 KB pages).
        let mut shm_mb = ShmFs::with_granule(base);
        let mb_seg = shm_mb.create_file(&mut machine.frames, "mailbox", MAILBOX_BYTES)?;
        aspace.mmap(
            &mut machine.frames,
            MAILBOX_BYTES,
            base,
            PteFlags::rw(),
            Backing::Shared(mb_seg),
            lpomp_vm::Populate::Eager,
            "mailbox",
        )?;

        setup.pages_prepopulated = aspace.fault_stats().prepopulated;

        // (6) Region allocator + kernel setup.
        let mut alloc = match (cfg.policy, small_base) {
            (PagePolicy::Mixed { threshold_bytes }, Some(sb)) => BumpAllocator::with_split(
                heap_base,
                heap_len,
                sb,
                MIXED_SMALL_REGION,
                threshold_bytes,
            ),
            _ => BumpAllocator::new(heap_base, heap_len),
        };
        kernel.setup(&mut alloc);

        // The fetch span covers the code plus the shared-library image
        // when one is mapped; without one it is exactly the binary size.
        let code_span = match lib {
            Some(seg) => base.round_up(code_prof.code_bytes) + seg.len_bytes(),
            None => code_prof.code_bytes,
        };
        let walker = CodeWalker::new(
            CODE_BASE,
            code_span,
            code_prof.hot_bytes,
            code_prof.cold_period,
        );
        Ok((aspace, setup, heap_base, walker))
    }

    /// Create a base-granule shm file, statically placed according to the
    /// NUMA placement (node 0 for master-node, round-robin chunks for
    /// interleave) when the machine has one.
    fn shm_file(
        shm: &mut ShmFs,
        frames: &mut lpomp_vm::BuddyAllocator,
        numa: &Option<lpomp_machine::NumaConfig>,
        name: &str,
        len: u64,
    ) -> VmResult<std::sync::Arc<lpomp_vm::SharedSegment>> {
        match numa {
            Some(n) => {
                let small = shm.granule().bytes();
                let chunk = n.placement.granularity().max(small);
                let nodes = n.nodes as u64;
                shm.create_file_placed(frames, name, len, |i| {
                    Some(((i * small / chunk) % nodes) as usize)
                })
            }
            None => shm.create_file(frames, name, len),
        }
    }

    /// Base virtual address of the shared heap.
    pub fn heap_base(&self) -> VirtAddr {
        self.heap_base
    }

    /// Run a khugepaged-style collapse over the heap (requires a system
    /// built with [`SystemBuilder::thp`] — a private anonymous
    /// base-granule heap).
    ///
    /// Charges every thread the full stop-the-world cost: copying each
    /// collapsed chunk's base pages (512 on the x86-64 ladder), rewriting
    /// its base-page-count + 1 page-table entries, and — if anything
    /// collapsed — a broadcast shootdown IPI taken on every core before
    /// the TLBs are flushed.
    pub fn promote_heap(&mut self) -> VmResult<PromotionReport> {
        let engine = self
            .team
            .engine_mut()
            .expect("simulated systems always have an engine");
        let report = promote_region(
            &mut engine.aspace,
            &mut engine.machine.frames,
            self.heap_base,
        )?;
        // Per chunk: migrate `per` base pages (one streamed read + write
        // each) and edit `per + 1` PTEs (`per` unmaps + 1 large map)
        // under the PT lock — 512 and 513 on the paper's x86-64 ladder.
        let per = report.chunk_bytes / engine.aspace.page_table().arch().base().bytes();
        let c = engine.machine.cost();
        let cycles = report.promoted * (per * c.migrate_page + (per + 1) * c.pt_edit);
        engine.region_enter("os:promote");
        engine.charge_all(cycles);
        if report.promoted > 0 {
            // IPI shootdown: stale 4 KB translations must go everywhere,
            // and every core pays for taking the interrupt.
            engine.tlb_shootdown();
            // After the flush no core may still translate a promoted chunk
            // from a stale small-page entry.
            debug_assert!(
                (0..engine.machine.config().cores()).all(|core| !engine
                    .machine
                    .dtlb(core)
                    .peek(self.heap_base)
                    .is_hit()),
                "stale TLB entries survived the post-collapse shootdown"
            );
        }
        engine.region_exit();
        Ok(report)
    }
}

/// What one tenant of a [`MultiSystem`] run produced.
#[derive(Clone, Debug)]
pub struct TenantReport {
    /// The tenant's label.
    pub name: String,
    /// Which kernel it ran.
    pub app: AppKind,
    /// Problem class.
    pub class: Class,
    /// Team size.
    pub threads: usize,
    /// Verification checksum.
    pub checksum: f64,
    /// Whether the checksum matches the serial reference.
    pub verified: bool,
    /// Cycle at which the tenant finished — its colocated runtime,
    /// including time spent descheduled.
    pub finish_cycles: u64,
    /// The tenant's aggregate counters (these partition the machine
    /// totals exactly — asserted at every yield).
    pub counters: Counters,
}

/// Result of one [`MultiSystem::run`].
#[derive(Clone, Debug)]
pub struct MultiRunReport {
    /// Per-tenant outcomes, in spec order.
    pub tenants: Vec<TenantReport>,
    /// Timeslices granted.
    pub slices: u64,
    /// Grants that switched between different tenants.
    pub switches: u64,
    /// The cycle at which the last tenant finished.
    pub makespan: u64,
}

/// A fully assembled multi-tenant machine: N processes, each with its own
/// page tables and address space carved out of the one machine's buddy
/// pools, ready to be gang-scheduled round-robin. Build with
/// [`SystemBuilder::build_tenants`], consume with [`Self::run`].
pub struct MultiSystem {
    machine: Machine,
    tasks: Vec<TenantTask>,
    refs: Vec<f64>,
    specs: Vec<TenantSpec>,
    timeslice: u64,
    mode: AsidMode,
    lib: Option<Arc<SharedSegment>>,
    /// Per-tenant bring-up statistics, in spec order.
    pub setup: Vec<SetupStats>,
}

impl MultiSystem {
    /// Assemble the machine and every tenant's process (address space,
    /// heap, kernel `setup`). Daemon cycle budgets are divided evenly
    /// across tenants so colocation does not multiply daemon throughput.
    ///
    /// # Panics
    /// Panics if `cfg.tenancy` is absent or names no tenants.
    pub fn build(cfg: &SystemConfig) -> VmResult<MultiSystem> {
        let ten = cfg
            .tenancy
            .clone()
            .expect("build_tenants requires .tenants(...)");
        assert!(!ten.tenants.is_empty(), "no tenants configured");
        let n = ten.tenants.len() as u64;
        let mut machine = Machine::new(cfg.machine.clone());
        let lib = if ten.shared_lib_bytes > 0 {
            let mut shm = ShmFs::new();
            Some(shm.create_file(&mut machine.frames, "shared-lib", ten.shared_lib_bytes)?)
        } else {
            None
        };
        let mut tasks = Vec::new();
        let mut refs = Vec::new();
        let mut setup = Vec::new();
        for (i, spec) in ten.tenants.iter().enumerate() {
            let mut tcfg = cfg.clone();
            tcfg.threads = spec.threads;
            tcfg.tenancy = None;
            if let Some(k) = &mut tcfg.khugepaged {
                k.cycle_budget = (k.cycle_budget / n).max(1);
            }
            if let Some(d) = &mut tcfg.numa_daemon {
                d.cycle_budget = (d.cycle_budget / n).max(1);
            }
            let mut kernel = spec.app.build(spec.class);
            let (aspace, s, _heap, walker) =
                System::build_parts(&tcfg, kernel.as_mut(), &mut machine, lib.as_ref())?;
            // The engine starts on a placeholder machine (same config);
            // the real one arrives with its first timeslice grant.
            let placeholder = Machine::new(cfg.machine.clone());
            let mut engine =
                SimEngine::new(placeholder, aspace, spec.threads, walker, tcfg.quantum);
            if let Some(k) = tcfg.khugepaged {
                engine.enable_khugepaged(k);
            }
            if let Some(nd) = tcfg.numa_daemon {
                engine.enable_numa_daemon(nd);
            }
            engine.enable_profiling(tcfg.profile);
            engine.set_schedule_override(tcfg.schedule);
            engine.set_steal_policy(tcfg.steal);
            refs.push(kernel.reference());
            setup.push(s);
            tasks.push(TenantTask {
                name: spec.name.clone(),
                asid: i as u16,
                threads: spec.threads,
                engine: Box::new(engine),
                work: Box::new(move |team| kernel.run(team)),
            });
        }
        Ok(MultiSystem {
            machine,
            tasks,
            refs,
            specs: ten.tenants,
            timeslice: ten.timeslice_cycles,
            mode: ten.asid_mode,
            lib,
            setup,
        })
    }

    /// The shared-library segment, when one was configured.
    pub fn shared_lib(&self) -> Option<&Arc<SharedSegment>> {
        self.lib.as_ref()
    }

    /// Run every tenant to completion under the timeslice scheduler.
    pub fn run(self) -> MultiRunReport {
        let (outcomes, stats) = run_tenants(self.machine, self.tasks, self.timeslice, self.mode);
        let tenants = outcomes
            .into_iter()
            .zip(self.specs)
            .zip(self.refs)
            .map(|((o, spec), reference)| TenantReport {
                name: o.name,
                app: spec.app,
                class: spec.class,
                threads: spec.threads,
                checksum: o.checksum,
                verified: verify_close(o.checksum, reference),
                finish_cycles: o.finish_clock,
                counters: o.engine.profile().aggregate(),
            })
            .collect();
        MultiRunReport {
            tenants,
            slices: stats.slices,
            switches: stats.switches,
            makespan: stats.makespan,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lpomp_machine::opteron_2x2;
    use lpomp_npb::{AppKind, Class};

    fn build(policy: PagePolicy, populate: PopulatePolicy) -> (System, Box<dyn Kernel>) {
        let mut kernel = AppKind::Cg.build(Class::S);
        let sys = System::builder(opteron_2x2())
            .threads(4)
            .policy(policy)
            .populate(populate)
            .build(kernel.as_mut())
            .unwrap();
        (sys, kernel)
    }

    #[test]
    fn small_page_system_runs_and_verifies() {
        let (mut sys, mut kernel) = build(PagePolicy::Small4K, PopulatePolicy::Prefault);
        let cs = kernel.run(&mut sys.team);
        assert!(kernel.verify(cs), "checksum {cs}");
        assert!(sys.team.elapsed_cycles() > 0);
        assert_eq!(sys.setup.huge_pages_reserved, 0);
    }

    #[test]
    fn large_page_system_runs_and_verifies() {
        let (mut sys, mut kernel) = build(PagePolicy::Large2M, PopulatePolicy::Prefault);
        let cs = kernel.run(&mut sys.team);
        assert!(kernel.verify(cs), "checksum {cs}");
        assert!(sys.setup.huge_pages_reserved > 0);
    }

    #[test]
    fn identical_results_across_page_policies() {
        let (mut s4, mut k4) = build(PagePolicy::Small4K, PopulatePolicy::Prefault);
        let (mut s2, mut k2) = build(PagePolicy::Large2M, PopulatePolicy::Prefault);
        let c4 = k4.run(&mut s4.team);
        let c2 = k2.run(&mut s2.team);
        assert_eq!(c4, c2, "page size must not change the computation");
    }

    #[test]
    fn prefault_takes_no_runtime_faults() {
        let (mut sys, mut kernel) = build(PagePolicy::Large2M, PopulatePolicy::Prefault);
        kernel.run(&mut sys.team);
        let agg = sys.team.aggregate_counters();
        assert_eq!(agg.get(lpomp_prof::Event::PageFaults), 0);
        assert!(sys.setup.pages_prepopulated > 0);
    }

    #[test]
    fn demand_populate_faults_at_runtime() {
        let (mut sys, mut kernel) = build(PagePolicy::Large2M, PopulatePolicy::OnDemand);
        kernel.run(&mut sys.team);
        let agg = sys.team.aggregate_counters();
        assert!(agg.get(lpomp_prof::Event::PageFaults) > 0);
    }

    #[test]
    fn thp_promotion_collapses_the_heap_and_speeds_reruns() {
        let mut kernel = AppKind::Cg.build(Class::S);
        let mut sys = System::builder(opteron_2x2())
            .threads(4)
            .thp()
            .build(kernel.as_mut())
            .unwrap();
        let cs_before = kernel.run(&mut sys.team);
        let misses_before = sys
            .team
            .aggregate_counters()
            .get(lpomp_prof::Event::DtlbMisses);
        let report = sys.promote_heap().unwrap();
        assert!(report.promoted > 0, "nothing promoted: {report:?}");
        assert_eq!(report.skipped_no_memory, 0);
        sys.team.engine_mut().unwrap().reset_timing();
        let cs_after = kernel.run(&mut sys.team);
        let misses_after = sys
            .team
            .aggregate_counters()
            .get(lpomp_prof::Event::DtlbMisses);
        assert_eq!(cs_before, cs_after, "promotion changed results");
        assert!(
            misses_after * 2 < misses_before,
            "misses {misses_before} -> {misses_after}"
        );
    }

    #[test]
    fn daemon_system_collapses_heap_incrementally() {
        let mut kernel = AppKind::Cg.build(Class::S);
        let mut sys = System::builder(opteron_2x2())
            .threads(4)
            .thp_daemon(true)
            .build(kernel.as_mut())
            .unwrap();
        let cs = kernel.run(&mut sys.team);
        assert!(kernel.verify(cs), "checksum {cs}");
        let agg = sys.team.aggregate_counters();
        assert!(
            agg.get(lpomp_prof::Event::PagesCollapsed) > 0,
            "daemon never collapsed anything"
        );
        assert!(agg.get(lpomp_prof::Event::DaemonCycles) > 0);
        // A steady-state rerun pays no further daemon tax and runs at
        // promoted (large-page) speed.
        let e = sys.team.engine_mut().unwrap();
        assert!(e.daemon().unwrap().is_idle());
        e.reset_timing();
        let cs2 = kernel.run(&mut sys.team);
        assert_eq!(cs, cs2);
        let agg2 = sys.team.aggregate_counters();
        assert_eq!(agg2.get(lpomp_prof::Event::DaemonCycles), 0);
    }

    #[test]
    fn promote_heap_rejects_shared_heaps() {
        let (mut sys, _kernel) = build(PagePolicy::Small4K, PopulatePolicy::Prefault);
        assert!(sys.promote_heap().is_err());
    }

    #[test]
    fn mixed_policy_builds_and_runs() {
        let (mut sys, mut kernel) = build(
            PagePolicy::Mixed {
                threshold_bytes: 256 * 1024,
            },
            PopulatePolicy::Prefault,
        );
        let cs = kernel.run(&mut sys.team);
        assert!(kernel.verify(cs));
    }

    #[test]
    fn builder_profiling_attributes_the_promote_pause() {
        let mut kernel = AppKind::Cg.build(Class::S);
        let mut sys = System::builder(opteron_2x2())
            .threads(4)
            .thp()
            .profile(lpomp_prof::ProfileSpec::Regions)
            .build(kernel.as_mut())
            .unwrap();
        kernel.run(&mut sys.team);
        let report = sys.promote_heap().unwrap();
        assert!(report.promoted > 0);
        let sheet = sys.team.region_sheet().unwrap();
        let os = sheet.by_name("os:promote").unwrap();
        let total = sheet.region_total(os);
        assert!(total.get(lpomp_prof::Event::Cycles) > 0);
        assert_eq!(total.get(lpomp_prof::Event::TlbShootdowns), 1);
        assert_eq!(sheet.total(), sys.team.aggregate_counters());
    }

    #[test]
    fn numa_gigantic_heap_reserves_per_node_and_verifies() {
        // The generalized per-node arm: a NUMA machine with a 1 GB heap
        // rung reserves its pool per node instead of falling back to the
        // single-pool path.
        use lpomp_machine::{modern_x86_2x2, NumaConfig, NumaPlacement};
        let mut kernel = AppKind::Cg.build(Class::S);
        let mut sys = System::builder(modern_x86_2x2())
            .threads(4)
            .numa(NumaConfig::opteron(NumaPlacement::MasterNode))
            .page_size(2)
            .build(kernel.as_mut())
            .unwrap();
        assert!(sys.setup.huge_pages_reserved > 0);
        let cs = kernel.run(&mut sys.team);
        assert!(kernel.verify(cs), "checksum {cs}");
    }

    #[test]
    fn single_tenant_is_identical_to_plain_system() {
        // The twin test: one tenant under the timeslice scheduler with
        // ASID tagging must reproduce the unscheduled system exactly —
        // same checksum, same counters (including zero switch charges),
        // same clock.
        let mut kernel = AppKind::Cg.build(Class::S);
        let mut plain = System::builder(opteron_2x2())
            .threads(2)
            .policy(PagePolicy::Large2M)
            .build(kernel.as_mut())
            .unwrap();
        let cs = kernel.run(&mut plain.team);
        let plain_counters = plain.team.aggregate_counters();
        let plain_cycles = plain.team.elapsed_cycles();

        let report = System::builder(opteron_2x2())
            .threads(2)
            .policy(PagePolicy::Large2M)
            .tenants(vec![TenantSpec::new("solo", AppKind::Cg, Class::S, 2)])
            .timeslice(200_000)
            .build_tenants()
            .unwrap()
            .run();
        assert_eq!(report.tenants.len(), 1);
        let t = &report.tenants[0];
        assert!(t.verified);
        assert_eq!(t.checksum, cs);
        assert_eq!(t.counters, plain_counters);
        assert_eq!(t.finish_cycles, plain_cycles);
        assert_eq!(t.counters.get(lpomp_prof::Event::ContextSwitches), 0);
        assert_eq!(t.counters.get(lpomp_prof::Event::DeschedCycles), 0);
        assert_eq!(report.switches, 0);
        assert!(report.slices > 1, "timeslicing never kicked in");
    }

    #[test]
    fn colocated_tenants_all_verify_and_get_charged() {
        let report = System::builder(opteron_2x2())
            .tenants(vec![
                TenantSpec::new("batch", AppKind::Cg, Class::S, 2),
                TenantSpec::new("latency", AppKind::Ep, Class::S, 1),
            ])
            .timeslice(500_000)
            .asid_mode(AsidMode::FlushOnSwitch)
            .build_tenants()
            .unwrap()
            .run();
        assert!(report.tenants.iter().all(|t| t.verified));
        assert!(report.switches > 0, "tenants never alternated");
        let max_finish = report
            .tenants
            .iter()
            .map(|t| t.finish_cycles)
            .max()
            .unwrap();
        assert!(report.makespan >= max_finish);
        let switched: u64 = report
            .tenants
            .iter()
            .map(|t| t.counters.get(lpomp_prof::Event::ContextSwitches))
            .sum();
        assert!(switched > 0, "no context-switch cost was charged");
        let desched: u64 = report
            .tenants
            .iter()
            .map(|t| t.counters.get(lpomp_prof::Event::DeschedCycles))
            .sum();
        assert!(desched > 0, "no tenant ever waited for the machine");
    }

    #[test]
    fn shared_lib_is_one_image_mapped_into_every_tenant() {
        let sys = System::builder(opteron_2x2())
            .tenants(vec![
                TenantSpec::new("a", AppKind::Ep, Class::S, 1),
                TenantSpec::new("b", AppKind::Ep, Class::S, 1),
                TenantSpec::new("c", AppKind::Ep, Class::S, 1),
            ])
            .shared_lib(64 * 1024)
            .build_tenants()
            .unwrap();
        let seg = sys.shared_lib().expect("lib configured");
        assert_eq!(seg.map_count(), 3, "one image, one mapping per tenant");
        let report = sys.run();
        assert!(report.tenants.iter().all(|t| t.verified));
    }
}
