//! Experiment grids: run a cartesian sweep of (application × machine ×
//! policy × thread count) and query the results.
//!
//! The figure binaries are thin wrappers over [`run_backend`]; downstream
//! users studying their own questions ("what does a 512-entry L2 TLB do
//! to SP?") want the sweep as a *library*: build a [`SweepSpec`], run it,
//! and slice the [`SweepResults`] by any axis.

use crate::backend::{run_backend, BackendKind};
use crate::experiment::{RunOpts, RunRecord};
use crate::parallel::{default_workers, par_map};
use crate::policy::PagePolicy;
use crate::store::{sweep_id, JsonlSink, RunStore, Shard, ShardManifest, StoreKey};
use lpomp_machine::MachineConfig;
use lpomp_npb::{AppKind, Class};
use lpomp_prof::Json;
use std::sync::Mutex;

/// The grid of configurations to run.
#[derive(Clone, Debug)]
pub struct SweepSpec {
    /// Applications to run.
    pub apps: Vec<AppKind>,
    /// Problem class (one per sweep; classes change the problem, so
    /// cross-class comparisons are rarely meaningful).
    pub class: Class,
    /// Machines to run on.
    pub machines: Vec<MachineConfig>,
    /// Page policies to compare.
    pub policies: Vec<PagePolicy>,
    /// Thread counts. Counts exceeding a machine's contexts are skipped
    /// for that machine.
    pub threads: Vec<usize>,
    /// Per-run options.
    pub opts: RunOpts,
    /// Which engine evaluates each grid point. `CycleExact` (the
    /// default) simulates; `Analytic` evaluates captured reuse profiles
    /// — one capture per `(app, threads)`, then every (machine × policy)
    /// point is closed-form. See [`crate::backend`].
    pub backend: BackendKind,
}

impl SweepSpec {
    /// The paper's Figure 4 grid for the given class.
    pub fn figure4(class: Class) -> Self {
        SweepSpec {
            apps: AppKind::PAPER_FIVE.to_vec(),
            class,
            machines: vec![lpomp_machine::opteron_2x2(), lpomp_machine::xeon_2x2_ht()],
            policies: vec![PagePolicy::Small4K, PagePolicy::Large2M],
            threads: vec![1, 2, 4, 8],
            opts: RunOpts::default(),
            backend: BackendKind::CycleExact,
        }
    }

    /// The same grid evaluated by a different backend.
    pub fn with_backend(mut self, backend: BackendKind) -> Self {
        self.backend = backend;
        self
    }

    /// Number of runs the sweep will execute.
    pub fn len(&self) -> usize {
        let mut n = 0;
        for m in &self.machines {
            let t = self.threads.iter().filter(|&&t| t <= m.contexts()).count();
            n += self.apps.len() * self.policies.len() * t;
        }
        n
    }

    /// True when the grid is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The grid in its canonical (serial-loop) order:
    /// machines → apps → policies → threads, skipping thread counts a
    /// machine cannot seat. Every `run*` method executes exactly this
    /// list, so results are identical however they are scheduled.
    fn grid(&self) -> Vec<(&MachineConfig, AppKind, PagePolicy, usize)> {
        let mut configs = Vec::with_capacity(self.len());
        for machine in &self.machines {
            for &app in &self.apps {
                for &policy in &self.policies {
                    for &threads in &self.threads {
                        if threads > machine.contexts() {
                            continue;
                        }
                        configs.push((machine, app, policy, threads));
                    }
                }
            }
        }
        configs
    }

    /// Execute the sweep on [`default_workers`] worker threads
    /// (`LPOMP_WORKERS` overrides; see [`crate::parallel`]).
    ///
    /// Configurations are independent simulations, so the records are
    /// byte-identical to a serial run regardless of worker count.
    pub fn run(&self) -> SweepResults {
        self.run_parallel(default_workers())
    }

    /// Execute the sweep on exactly `workers` threads. `run_parallel(1)`
    /// is the serial loop; any other count produces the same records in
    /// the same (grid) order.
    pub fn run_parallel(&self, workers: usize) -> SweepResults {
        let grid = self.grid();
        if self.backend == BackendKind::Analytic {
            // Warm the profile cache serially: captures are the expensive
            // step and `get_or_capture` holds the cache lock across one,
            // so letting workers race to it would serialize them anyway.
            for &(_, app, _, threads) in &grid {
                crate::backend::cached_profile(app, self.class, threads);
            }
        }
        let records = par_map(&grid, workers, |_, &(machine, app, policy, threads)| {
            run_backend(
                self.backend,
                app,
                self.class,
                machine.clone(),
                policy,
                threads,
                self.opts,
            )
        });
        SweepResults { records }
    }

    /// Execute with a progress callback `(completed, total)`.
    ///
    /// Serial by construction (the callback is `FnMut`); use [`run`] or
    /// [`run_parallel`] when no per-run hook is needed.
    ///
    /// [`run`]: SweepSpec::run
    /// [`run_parallel`]: SweepSpec::run_parallel
    pub fn run_with_progress(&self, mut progress: impl FnMut(usize, usize)) -> SweepResults {
        let grid = self.grid();
        let total = grid.len();
        let mut records = Vec::with_capacity(total);
        for (done, &(machine, app, policy, threads)) in grid.iter().enumerate() {
            progress(done, total);
            records.push(run_backend(
                self.backend,
                app,
                self.class,
                machine.clone(),
                policy,
                threads,
                self.opts,
            ));
        }
        SweepResults { records }
    }

    /// The [`StoreKey`] of every grid configuration, in canonical grid
    /// order — index `i` here is "grid index `i`" everywhere in the
    /// store/shard machinery.
    pub fn store_keys(&self) -> Vec<StoreKey> {
        self.grid()
            .iter()
            .map(|&(machine, app, policy, threads)| {
                StoreKey::new(
                    machine,
                    app,
                    self.class,
                    policy,
                    threads,
                    self.opts,
                    self.backend,
                )
            })
            .collect()
    }

    /// Content identity of the whole grid (see [`sweep_id`]); names the
    /// shard manifests so different sweeps can share one store directory.
    pub fn sweep_id(&self) -> String {
        sweep_id(&self.store_keys())
    }

    /// Execute the sweep *incrementally* against `store`: configurations
    /// whose [`StoreKey`] resolves to a valid stored record are replayed
    /// from disk; only the misses run the engine (on [`default_workers`]
    /// threads), and every fresh record is persisted for next time. The
    /// merged results are byte-identical to [`run`](SweepSpec::run) —
    /// same records, same grid order — so a second invocation on
    /// unchanged code is zero engine runs.
    ///
    /// Hit/miss counts are logged to stderr and returned in the
    /// [`IncrementalSweep`].
    pub fn run_incremental(&self, store: &RunStore) -> std::io::Result<IncrementalSweep> {
        self.run_incremental_with(store, default_workers(), None)
    }

    /// [`run_incremental`](SweepSpec::run_incremental) with an explicit
    /// worker count and an optional JSON-lines sink. Cached records are
    /// streamed first (in grid order, `"cached":true`), then fresh
    /// records as they complete.
    pub fn run_incremental_with(
        &self,
        store: &RunStore,
        workers: usize,
        sink: Option<&JsonlSink>,
    ) -> std::io::Result<IncrementalSweep> {
        let grid = self.grid();
        let keys = self.store_keys();
        let mut slots: Vec<Option<RunRecord>> = keys.iter().map(|k| store.load(k)).collect();
        let miss_idx: Vec<usize> = (0..grid.len()).filter(|&i| slots[i].is_none()).collect();
        let hits = grid.len() - miss_idx.len();
        if let Some(sink) = sink {
            for rec in slots.iter().flatten() {
                sink.emit(rec, true);
            }
        }
        let fresh = self.run_missing(&grid, &keys, &miss_idx, store, workers, sink)?;
        for (&i, rec) in miss_idx.iter().zip(fresh) {
            slots[i] = Some(rec);
        }
        eprintln!(
            "sweep store [{}]: {hits} hits, {} misses / {} configs",
            store.dir().display(),
            miss_idx.len(),
            grid.len()
        );
        Ok(IncrementalSweep {
            results: SweepResults {
                records: slots.into_iter().map(Option::unwrap).collect(),
            },
            hits,
            misses: miss_idx.len(),
        })
    }

    /// Run grid indices `miss_idx` (misses of some superset), saving and
    /// streaming each record. Returns the fresh records in `miss_idx`
    /// order. The first store-write error aborts (a sweep that cannot
    /// persist would silently lose its resume guarantee).
    fn run_missing(
        &self,
        grid: &[(&MachineConfig, AppKind, PagePolicy, usize)],
        keys: &[StoreKey],
        miss_idx: &[usize],
        store: &RunStore,
        workers: usize,
        sink: Option<&JsonlSink>,
    ) -> std::io::Result<Vec<RunRecord>> {
        if self.backend == BackendKind::Analytic {
            // Warm the profile cache serially over the *misses* only —
            // hits never consult a profile (see `run_parallel` for why
            // serial).
            for &i in miss_idx {
                let (_, app, _, threads) = grid[i];
                crate::backend::cached_profile(app, self.class, threads);
            }
        }
        let save_errors: Mutex<Vec<std::io::Error>> = Mutex::new(Vec::new());
        let fresh = par_map(miss_idx, workers, |_, &gi| {
            let (machine, app, policy, threads) = grid[gi];
            let rec = run_backend(
                self.backend,
                app,
                self.class,
                machine.clone(),
                policy,
                threads,
                self.opts,
            );
            if let Err(e) = store.save(&keys[gi], &rec) {
                save_errors
                    .lock()
                    .unwrap_or_else(|p| p.into_inner())
                    .push(e);
            }
            if let Some(sink) = sink {
                sink.emit(&rec, false);
            }
            rec
        });
        let mut errors = save_errors.into_inner().unwrap_or_else(|p| p.into_inner());
        match errors.pop() {
            Some(e) => Err(e),
            None => Ok(fresh),
        }
    }

    /// Execute this process's slice of a sweep partitioned across
    /// `shard.count` cooperating processes sharing `store`, incrementally
    /// (cached configs are not re-run), and record a [`ShardManifest`]
    /// proving which grid indices this shard covered. Once every shard
    /// has run, [`merge_shards`](SweepSpec::merge_shards) assembles the
    /// full results without touching the engine.
    pub fn run_shard(
        &self,
        shard: Shard,
        store: &RunStore,
        workers: usize,
        sink: Option<&JsonlSink>,
    ) -> std::io::Result<ShardManifest> {
        let grid = self.grid();
        let keys = self.store_keys();
        let owned: Vec<usize> = (0..grid.len()).filter(|&i| shard.covers(i)).collect();
        let mut miss_idx = Vec::new();
        for &i in &owned {
            match store.load(&keys[i]) {
                Some(rec) => {
                    if let Some(sink) = sink {
                        sink.emit(&rec, true);
                    }
                }
                None => miss_idx.push(i),
            }
        }
        let hits = owned.len() - miss_idx.len();
        self.run_missing(&grid, &keys, &miss_idx, store, workers, sink)?;
        let manifest = ShardManifest {
            sweep: self.sweep_id(),
            shard,
            entries: owned.iter().map(|&i| (i, keys[i].address())).collect(),
        };
        manifest.write(store)?;
        eprintln!(
            "sweep store [{}] shard {shard}: {hits} hits, {} misses / {} configs",
            store.dir().display(),
            miss_idx.len(),
            owned.len()
        );
        Ok(manifest)
    }

    /// Assemble the results of a sweep previously run as `count` shards
    /// into `store` (in any order, on any mix of hosts sharing the
    /// directory). Validates before trusting: every shard's manifest must
    /// be present and belong to *this* sweep, their entries must cover
    /// the grid exactly once, each entry's address must match the key
    /// this spec derives (detecting hash collisions and spec drift), and
    /// every record must still load. Any violation is a descriptive
    /// error, never partial results.
    ///
    /// The merged records equal a single-process [`run`](SweepSpec::run)
    /// byte-for-byte.
    pub fn merge_shards(&self, store: &RunStore, count: usize) -> Result<SweepResults, String> {
        if count == 0 {
            return Err("merge: shard count must be >= 1".into());
        }
        let keys = self.store_keys();
        let id = sweep_id(&keys);
        let mut covered: Vec<Option<Shard>> = vec![None; keys.len()];
        for index in 0..count {
            let shard = Shard { index, count };
            let path = store.dir().join(ShardManifest::file_name(&id, shard));
            if !path.exists() {
                return Err(format!(
                    "merge: shard {shard} of sweep {id} has no manifest in {} — \
                     did every `--shard i/{count}` run finish?",
                    store.dir().display()
                ));
            }
            let m = ShardManifest::read(&path)?;
            if m.sweep != id {
                return Err(format!(
                    "merge: manifest {} names sweep {}, expected {id}",
                    path.display(),
                    m.sweep
                ));
            }
            if m.shard != shard {
                return Err(format!(
                    "merge: manifest {} claims shard {}, expected {shard}",
                    path.display(),
                    m.shard
                ));
            }
            for &(gi, ref addr) in &m.entries {
                let key = keys.get(gi).ok_or_else(|| {
                    format!(
                        "merge: shard {shard} covers grid index {gi}, but the grid has {} configs",
                        keys.len()
                    )
                })?;
                if *addr != key.address() {
                    return Err(format!(
                        "merge: grid index {gi} stored as {addr} but this spec derives {} — \
                         key collision or spec drift",
                        key.address()
                    ));
                }
                if let Some(prev) = covered[gi] {
                    return Err(format!(
                        "merge: grid index {gi} covered by both shard {prev} and shard {shard}"
                    ));
                }
                covered[gi] = Some(shard);
            }
        }
        if let Some(gi) = covered.iter().position(Option::is_none) {
            return Err(format!(
                "merge: grid index {gi} ({}) covered by no shard",
                keys[gi].fingerprint()
            ));
        }
        let mut records = Vec::with_capacity(keys.len());
        for (gi, key) in keys.iter().enumerate() {
            records.push(store.load(key).ok_or_else(|| {
                format!(
                    "merge: record for grid index {gi} ({}) missing or invalid in {}",
                    key.fingerprint(),
                    store.dir().display()
                )
            })?);
        }
        Ok(SweepResults { records })
    }
}

// ---------------------------------------------------------------------
// Generic keyed grids.

/// A grid-cell payload a [`KeyedGrid`] can persist in a [`RunStore`] and
/// replay. [`RunRecord`] implements it with the store's native record
/// encoding; experiment binaries whose cells are *not* run records (the
/// fragmentation and tenancy tables) implement it over their own row
/// structs.
pub trait GridCell: Sized + Send {
    /// Single-line JSON object encoding of the cell. `f64` fields must
    /// use Rust's default (shortest-round-trip) formatting so the decode
    /// is bit-exact.
    fn to_store_json(&self) -> String;

    /// Rebuild a cell from parsed [`Self::to_store_json`] output. `None`
    /// on any mismatch — the grid treats it as a cache miss and re-runs.
    fn from_store_json(j: &Json, key: &StoreKey) -> Option<Self>;
}

impl GridCell for RunRecord {
    fn to_store_json(&self) -> String {
        crate::store::record_json(self)
    }

    fn from_store_json(j: &Json, key: &StoreKey) -> Option<Self> {
        crate::store::record_from_json(j, key).ok()
    }
}

/// An arbitrary keyed experiment grid with the same store machinery as
/// [`SweepSpec`] — incremental re-runs, interleaved shards with coverage
/// manifests, merge validation, JSON-lines streaming — but over *any*
/// cell type and run closure, not just the (machine × app × policy ×
/// threads) cartesian product. The keys carry the full configuration
/// identity (use [`StoreKey::with_variant`] for axes the typed key does
/// not model); cell `i` is produced by `run(i, &keys[i])` and must be a
/// pure function of that key.
pub struct KeyedGrid<'a, T> {
    keys: Vec<StoreKey>,
    run: CellFn<'a, T>,
}

/// The boxed cell-producing closure of a [`KeyedGrid`].
type CellFn<'a, T> = Box<dyn Fn(usize, &StoreKey) -> T + Sync + 'a>;

impl<'a, T: GridCell> KeyedGrid<'a, T> {
    /// A grid over `keys`, with `run` producing cell `i` from key `i`.
    pub fn new(keys: Vec<StoreKey>, run: impl Fn(usize, &StoreKey) -> T + Sync + 'a) -> Self {
        KeyedGrid {
            keys,
            run: Box::new(run),
        }
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// True when the grid has no cells.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// The grid's keys, in canonical order.
    pub fn keys(&self) -> &[StoreKey] {
        &self.keys
    }

    /// Content identity of the grid (see [`sweep_id`]).
    pub fn sweep_id(&self) -> String {
        sweep_id(&self.keys)
    }

    /// Run every cell on `workers` threads, no store involved. Results
    /// are in key order regardless of worker count.
    pub fn run_all(&self, workers: usize) -> Vec<T> {
        let idx: Vec<usize> = (0..self.keys.len()).collect();
        par_map(&idx, workers, |_, &i| (self.run)(i, &self.keys[i]))
    }

    /// Run the grid incrementally against `store` (cells whose key
    /// resolves replay from disk; misses run and are persisted), exactly
    /// like [`SweepSpec::run_incremental_with`]. Returns the cells in
    /// key order plus `(hits, misses)`.
    pub fn run_incremental(
        &self,
        store: &RunStore,
        workers: usize,
        sink: Option<&JsonlSink>,
    ) -> std::io::Result<(Vec<T>, usize, usize)> {
        let mut slots: Vec<Option<T>> = self.keys.iter().map(|k| self.load(store, k)).collect();
        let miss_idx: Vec<usize> = (0..slots.len()).filter(|&i| slots[i].is_none()).collect();
        let hits = slots.len() - miss_idx.len();
        if let Some(sink) = sink {
            for cell in slots.iter().flatten() {
                sink.emit_line(&cell.to_store_json(), true);
            }
        }
        let fresh = self.run_missing(&miss_idx, store, workers, sink)?;
        for (&i, cell) in miss_idx.iter().zip(fresh) {
            slots[i] = Some(cell);
        }
        eprintln!(
            "keyed grid store [{}]: {hits} hits, {} misses / {} cells",
            store.dir().display(),
            miss_idx.len(),
            slots.len()
        );
        let misses = miss_idx.len();
        Ok((
            slots.into_iter().map(Option::unwrap).collect(),
            hits,
            misses,
        ))
    }

    /// Run this process's interleaved slice of the grid into the shared
    /// store and write its coverage manifest — the keyed counterpart of
    /// [`SweepSpec::run_shard`].
    pub fn run_shard(
        &self,
        shard: Shard,
        store: &RunStore,
        workers: usize,
        sink: Option<&JsonlSink>,
    ) -> std::io::Result<ShardManifest> {
        let owned: Vec<usize> = (0..self.keys.len()).filter(|&i| shard.covers(i)).collect();
        let mut miss_idx = Vec::new();
        for &i in &owned {
            match self.load(store, &self.keys[i]) {
                Some(cell) => {
                    if let Some(sink) = sink {
                        sink.emit_line(&cell.to_store_json(), true);
                    }
                }
                None => miss_idx.push(i),
            }
        }
        let hits = owned.len() - miss_idx.len();
        self.run_missing(&miss_idx, store, workers, sink)?;
        let manifest = ShardManifest {
            sweep: self.sweep_id(),
            shard,
            entries: owned.iter().map(|&i| (i, self.keys[i].address())).collect(),
        };
        manifest.write(store)?;
        eprintln!(
            "keyed grid store [{}] shard {shard}: {hits} hits, {} misses / {} cells",
            store.dir().display(),
            miss_idx.len(),
            owned.len()
        );
        Ok(manifest)
    }

    /// Assemble a previously sharded grid from the store, with the same
    /// coverage/collision validation as [`SweepSpec::merge_shards`].
    pub fn merge_shards(&self, store: &RunStore, count: usize) -> Result<Vec<T>, String> {
        if count == 0 {
            return Err("merge: shard count must be >= 1".into());
        }
        let id = self.sweep_id();
        let mut covered: Vec<Option<Shard>> = vec![None; self.keys.len()];
        for index in 0..count {
            let shard = Shard { index, count };
            let path = store.dir().join(ShardManifest::file_name(&id, shard));
            if !path.exists() {
                return Err(format!(
                    "merge: shard {shard} of grid {id} has no manifest in {} — \
                     did every `--shard i/{count}` run finish?",
                    store.dir().display()
                ));
            }
            let m = ShardManifest::read(&path)?;
            if m.sweep != id {
                return Err(format!(
                    "merge: manifest {} names grid {}, expected {id}",
                    path.display(),
                    m.sweep
                ));
            }
            if m.shard != shard {
                return Err(format!(
                    "merge: manifest {} claims shard {}, expected {shard}",
                    path.display(),
                    m.shard
                ));
            }
            for &(gi, ref addr) in &m.entries {
                let key = self.keys.get(gi).ok_or_else(|| {
                    format!(
                        "merge: shard {shard} covers cell {gi}, but the grid has {} cells",
                        self.keys.len()
                    )
                })?;
                if *addr != key.address() {
                    return Err(format!(
                        "merge: cell {gi} stored as {addr} but this grid derives {} — \
                         key collision or grid drift",
                        key.address()
                    ));
                }
                if let Some(prev) = covered[gi] {
                    return Err(format!(
                        "merge: cell {gi} covered by both shard {prev} and shard {shard}"
                    ));
                }
                covered[gi] = Some(shard);
            }
        }
        if let Some(gi) = covered.iter().position(Option::is_none) {
            return Err(format!(
                "merge: cell {gi} ({}) covered by no shard",
                self.keys[gi].fingerprint()
            ));
        }
        let mut cells = Vec::with_capacity(self.keys.len());
        for (gi, key) in self.keys.iter().enumerate() {
            cells.push(self.load(store, key).ok_or_else(|| {
                format!(
                    "merge: cell {gi} ({}) missing or invalid in {}",
                    key.fingerprint(),
                    store.dir().display()
                )
            })?);
        }
        Ok(cells)
    }

    fn load(&self, store: &RunStore, key: &StoreKey) -> Option<T> {
        T::from_store_json(&store.load_cell(key)?, key)
    }

    /// Run cells `miss_idx`, saving and streaming each. The first
    /// store-write error aborts, like [`SweepSpec`]'s `run_missing`.
    fn run_missing(
        &self,
        miss_idx: &[usize],
        store: &RunStore,
        workers: usize,
        sink: Option<&JsonlSink>,
    ) -> std::io::Result<Vec<T>> {
        let save_errors: Mutex<Vec<std::io::Error>> = Mutex::new(Vec::new());
        let fresh = par_map(miss_idx, workers, |_, &gi| {
            let cell = (self.run)(gi, &self.keys[gi]);
            let json = cell.to_store_json();
            if let Err(e) = store.save_cell(&self.keys[gi], &json) {
                save_errors
                    .lock()
                    .unwrap_or_else(|p| p.into_inner())
                    .push(e);
            }
            if let Some(sink) = sink {
                sink.emit_line(&json, false);
            }
            cell
        });
        let mut errors = save_errors.into_inner().unwrap_or_else(|p| p.into_inner());
        match errors.pop() {
            Some(e) => Err(e),
            None => Ok(fresh),
        }
    }
}

/// What [`SweepSpec::run_incremental`] did: the merged results plus the
/// cache observability counters (`hits + misses == results.records().len()`).
#[derive(Clone, Debug)]
pub struct IncrementalSweep {
    /// The full sweep results, byte-identical to a cold [`SweepSpec::run`].
    pub results: SweepResults,
    /// Configurations replayed from the store.
    pub hits: usize,
    /// Configurations that ran the engine (and were then persisted).
    pub misses: usize,
}

/// The outcome of a sweep: every [`RunRecord`], queryable by axis.
#[derive(Clone, Debug)]
pub struct SweepResults {
    records: Vec<RunRecord>,
}

impl SweepResults {
    /// All records.
    pub fn records(&self) -> &[RunRecord] {
        &self.records
    }

    /// The record for an exact configuration, if present.
    pub fn get(
        &self,
        app: AppKind,
        machine: &str,
        policy: PagePolicy,
        threads: usize,
    ) -> Option<&RunRecord> {
        self.records.iter().find(|r| {
            r.app == app && r.machine == machine && r.policy == policy && r.threads == threads
        })
    }

    /// Improvement (%) of `PagePolicy::Large2M` over `PagePolicy::Small4K`
    /// for a configuration, if both runs exist.
    pub fn improvement(&self, app: AppKind, machine: &str, threads: usize) -> Option<f64> {
        let small = self.get(app, machine, PagePolicy::Small4K, threads)?;
        let large = self.get(app, machine, PagePolicy::Large2M, threads)?;
        Some((1.0 - large.seconds / small.seconds) * 100.0)
    }

    /// DTLB-miss reduction factor (4 KB ÷ 2 MB) for a configuration.
    pub fn miss_reduction(&self, app: AppKind, machine: &str, threads: usize) -> Option<f64> {
        let small = self.get(app, machine, PagePolicy::Small4K, threads)?;
        let large = self.get(app, machine, PagePolicy::Large2M, threads)?;
        Some(small.dtlb_misses() as f64 / large.dtlb_misses().max(1) as f64)
    }

    /// Parallel speedup of a configuration relative to its 1-thread run.
    pub fn speedup(
        &self,
        app: AppKind,
        machine: &str,
        policy: PagePolicy,
        threads: usize,
    ) -> Option<f64> {
        let one = self.get(app, machine, policy, 1)?;
        let n = self.get(app, machine, policy, threads)?;
        Some(one.seconds / n.seconds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lpomp_machine::opteron_2x2;

    fn small_spec() -> SweepSpec {
        SweepSpec {
            apps: vec![AppKind::Cg, AppKind::Ep],
            class: Class::S,
            machines: vec![opteron_2x2()],
            policies: vec![PagePolicy::Small4K, PagePolicy::Large2M],
            threads: vec![1, 4],
            opts: RunOpts::default(),
            backend: BackendKind::CycleExact,
        }
    }

    #[test]
    fn len_counts_the_grid() {
        let s = small_spec();
        assert_eq!(s.len(), 2 * 2 * 2);
        assert!(!s.is_empty());
    }

    #[test]
    fn oversized_thread_counts_are_skipped() {
        let mut s = small_spec();
        s.threads = vec![1, 8]; // Opteron has 4 contexts
        assert_eq!(s.len(), 2 * 2);
        let r = s.run();
        assert_eq!(r.records().len(), 4);
        assert!(r
            .get(AppKind::Cg, "Opteron", PagePolicy::Small4K, 8)
            .is_none());
    }

    #[test]
    fn sweep_queries_work() {
        let r = small_spec().run();
        assert_eq!(r.records().len(), 8);
        let imp = r.improvement(AppKind::Cg, "Opteron", 4).unwrap();
        assert!(imp > -5.0 && imp < 60.0);
        let red = r.miss_reduction(AppKind::Cg, "Opteron", 4).unwrap();
        assert!(red > 1.0, "CG reduction {red}");
        let sp = r
            .speedup(AppKind::Cg, "Opteron", PagePolicy::Small4K, 4)
            .unwrap();
        assert!(sp > 2.0, "speedup {sp}");
        assert!(r.improvement(AppKind::Mg, "Opteron", 4).is_none());
    }

    #[test]
    fn progress_callback_fires_per_run() {
        let mut calls = 0;
        small_spec().run_with_progress(|_, total| {
            calls += 1;
            assert_eq!(total, 8);
        });
        assert_eq!(calls, 8);
    }

    #[test]
    fn parallel_sweep_is_deterministic() {
        // Each grid cell is an independent simulation, so the records must
        // be *byte-identical* (RunRecord's PartialEq compares f64 fields
        // exactly) in grid order for any worker count — including counts
        // far above the host's parallelism.
        let spec = small_spec();
        let serial = spec.run_parallel(1);
        let parallel = spec.run_parallel(8);
        assert_eq!(serial.records().len(), 8);
        assert_eq!(serial.records(), parallel.records());
    }

    #[test]
    fn analytic_sweep_is_deterministic_and_ordered() {
        let spec = small_spec().with_backend(BackendKind::Analytic);
        let serial = spec.run_parallel(1);
        let parallel = spec.run_parallel(8);
        assert_eq!(serial.records(), parallel.records());
        assert!(serial.records().iter().all(|r| r.backend == "analytic"));
        // The paper's effect survives the model at sweep level too.
        let red = serial.miss_reduction(AppKind::Cg, "Opteron", 4).unwrap();
        assert!(red > 1.0, "CG analytic reduction {red}");
    }

    #[test]
    fn figure4_spec_shape() {
        let s = SweepSpec::figure4(Class::S);
        // 5 apps x 2 policies x (3 opteron + 4 xeon thread counts).
        assert_eq!(s.len(), 5 * 2 * 7);
    }

    fn keyed_test_grid(variant: &str) -> KeyedGrid<'static, RunRecord> {
        const THREADS: [usize; 2] = [1, 2];
        let m = opteron_2x2();
        let keys: Vec<StoreKey> = THREADS
            .iter()
            .map(|&t| {
                StoreKey::new(
                    &m,
                    AppKind::Ep,
                    Class::S,
                    PagePolicy::Small4K,
                    t,
                    RunOpts::default(),
                    BackendKind::CycleExact,
                )
                .with_variant(variant)
            })
            .collect();
        KeyedGrid::new(keys, |i, _k| {
            run_backend(
                BackendKind::CycleExact,
                AppKind::Ep,
                Class::S,
                opteron_2x2(),
                PagePolicy::Small4K,
                THREADS[i],
                RunOpts::default(),
            )
        })
    }

    #[test]
    fn keyed_grid_incremental_shard_merge_round_trip() {
        let dir = std::env::temp_dir().join(format!("lpomp-keyed-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = crate::store::RunStore::open(&dir).unwrap();
        let grid = keyed_test_grid("keyed-test");
        let cold = grid.run_all(2);
        let (inc, hits, misses) = grid.run_incremental(&store, 2, None).unwrap();
        assert_eq!((hits, misses), (0, 2), "cold store misses everything");
        assert_eq!(inc, cold);
        let (warm, hits2, misses2) = grid.run_incremental(&store, 2, None).unwrap();
        assert_eq!((hits2, misses2), (2, 0), "second pass is all hits");
        assert_eq!(warm, cold, "replayed cells are byte-identical");
        // Shard + merge over the same store.
        assert!(
            grid.merge_shards(&store, 2).is_err(),
            "merge refuses before shards ran"
        );
        for index in 0..2 {
            grid.run_shard(Shard { index, count: 2 }, &store, 1, None)
                .unwrap();
        }
        let merged = grid.merge_shards(&store, 2).unwrap();
        assert_eq!(merged, cold);
        // A different variant shares the store without colliding.
        let other = keyed_test_grid("keyed-test-2");
        let (_, h, m) = other.run_incremental(&store, 2, None).unwrap();
        assert_eq!((h, m), (0, 2), "variant keys never alias");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn keyed_grid_supports_custom_cells() {
        #[derive(Debug, PartialEq)]
        struct Row {
            x: u64,
            y: f64,
        }
        impl GridCell for Row {
            fn to_store_json(&self) -> String {
                format!("{{\"x\":{},\"y\":{}}}", self.x, self.y)
            }
            fn from_store_json(j: &Json, _key: &StoreKey) -> Option<Self> {
                Some(Row {
                    x: j.get("x").and_then(Json::as_num)? as u64,
                    y: j.get("y").and_then(Json::as_num)?,
                })
            }
        }
        let dir = std::env::temp_dir().join(format!("lpomp-keyed-cell-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = crate::store::RunStore::open(&dir).unwrap();
        let m = opteron_2x2();
        let keys: Vec<StoreKey> = (0..3)
            .map(|i| {
                StoreKey::new(
                    &m,
                    AppKind::Ep,
                    Class::S,
                    PagePolicy::Small4K,
                    1,
                    RunOpts::default(),
                    BackendKind::CycleExact,
                )
                .with_variant(&format!("row={i}"))
            })
            .collect();
        let grid = KeyedGrid::new(keys, |i, _k| Row {
            x: i as u64,
            y: 0.1 + i as f64 / 3.0,
        });
        let cold = grid.run_all(1);
        let (_, h0, m0) = grid.run_incremental(&store, 1, None).unwrap();
        assert_eq!((h0, m0), (0, 3));
        let (warm, h1, m1) = grid.run_incremental(&store, 1, None).unwrap();
        assert_eq!((h1, m1), (3, 0));
        // f64 fields survive the round trip bit-exactly.
        assert_eq!(warm, cold);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
