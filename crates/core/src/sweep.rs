//! Experiment grids: run a cartesian sweep of (application × machine ×
//! policy × thread count) and query the results.
//!
//! The figure binaries are thin wrappers over [`run_backend`]; downstream
//! users studying their own questions ("what does a 512-entry L2 TLB do
//! to SP?") want the sweep as a *library*: build a [`SweepSpec`], run it,
//! and slice the [`SweepResults`] by any axis.

use crate::backend::{run_backend, BackendKind};
use crate::experiment::{RunOpts, RunRecord};
use crate::parallel::{default_workers, par_map};
use crate::policy::PagePolicy;
use lpomp_machine::MachineConfig;
use lpomp_npb::{AppKind, Class};

/// The grid of configurations to run.
#[derive(Clone, Debug)]
pub struct SweepSpec {
    /// Applications to run.
    pub apps: Vec<AppKind>,
    /// Problem class (one per sweep; classes change the problem, so
    /// cross-class comparisons are rarely meaningful).
    pub class: Class,
    /// Machines to run on.
    pub machines: Vec<MachineConfig>,
    /// Page policies to compare.
    pub policies: Vec<PagePolicy>,
    /// Thread counts. Counts exceeding a machine's contexts are skipped
    /// for that machine.
    pub threads: Vec<usize>,
    /// Per-run options.
    pub opts: RunOpts,
    /// Which engine evaluates each grid point. `CycleExact` (the
    /// default) simulates; `Analytic` evaluates captured reuse profiles
    /// — one capture per `(app, threads)`, then every (machine × policy)
    /// point is closed-form. See [`crate::backend`].
    pub backend: BackendKind,
}

impl SweepSpec {
    /// The paper's Figure 4 grid for the given class.
    pub fn figure4(class: Class) -> Self {
        SweepSpec {
            apps: AppKind::PAPER_FIVE.to_vec(),
            class,
            machines: vec![lpomp_machine::opteron_2x2(), lpomp_machine::xeon_2x2_ht()],
            policies: vec![PagePolicy::Small4K, PagePolicy::Large2M],
            threads: vec![1, 2, 4, 8],
            opts: RunOpts::default(),
            backend: BackendKind::CycleExact,
        }
    }

    /// The same grid evaluated by a different backend.
    pub fn with_backend(mut self, backend: BackendKind) -> Self {
        self.backend = backend;
        self
    }

    /// Number of runs the sweep will execute.
    pub fn len(&self) -> usize {
        let mut n = 0;
        for m in &self.machines {
            let t = self.threads.iter().filter(|&&t| t <= m.contexts()).count();
            n += self.apps.len() * self.policies.len() * t;
        }
        n
    }

    /// True when the grid is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The grid in its canonical (serial-loop) order:
    /// machines → apps → policies → threads, skipping thread counts a
    /// machine cannot seat. Every `run*` method executes exactly this
    /// list, so results are identical however they are scheduled.
    fn grid(&self) -> Vec<(&MachineConfig, AppKind, PagePolicy, usize)> {
        let mut configs = Vec::with_capacity(self.len());
        for machine in &self.machines {
            for &app in &self.apps {
                for &policy in &self.policies {
                    for &threads in &self.threads {
                        if threads > machine.contexts() {
                            continue;
                        }
                        configs.push((machine, app, policy, threads));
                    }
                }
            }
        }
        configs
    }

    /// Execute the sweep on [`default_workers`] worker threads
    /// (`LPOMP_WORKERS` overrides; see [`crate::parallel`]).
    ///
    /// Configurations are independent simulations, so the records are
    /// byte-identical to a serial run regardless of worker count.
    pub fn run(&self) -> SweepResults {
        self.run_parallel(default_workers())
    }

    /// Execute the sweep on exactly `workers` threads. `run_parallel(1)`
    /// is the serial loop; any other count produces the same records in
    /// the same (grid) order.
    pub fn run_parallel(&self, workers: usize) -> SweepResults {
        let grid = self.grid();
        if self.backend == BackendKind::Analytic {
            // Warm the profile cache serially: captures are the expensive
            // step and `get_or_capture` holds the cache lock across one,
            // so letting workers race to it would serialize them anyway.
            for &(_, app, _, threads) in &grid {
                crate::backend::cached_profile(app, self.class, threads);
            }
        }
        let records = par_map(&grid, workers, |_, &(machine, app, policy, threads)| {
            run_backend(
                self.backend,
                app,
                self.class,
                machine.clone(),
                policy,
                threads,
                self.opts,
            )
        });
        SweepResults { records }
    }

    /// Execute with a progress callback `(completed, total)`.
    ///
    /// Serial by construction (the callback is `FnMut`); use [`run`] or
    /// [`run_parallel`] when no per-run hook is needed.
    ///
    /// [`run`]: SweepSpec::run
    /// [`run_parallel`]: SweepSpec::run_parallel
    pub fn run_with_progress(&self, mut progress: impl FnMut(usize, usize)) -> SweepResults {
        let grid = self.grid();
        let total = grid.len();
        let mut records = Vec::with_capacity(total);
        for (done, &(machine, app, policy, threads)) in grid.iter().enumerate() {
            progress(done, total);
            records.push(run_backend(
                self.backend,
                app,
                self.class,
                machine.clone(),
                policy,
                threads,
                self.opts,
            ));
        }
        SweepResults { records }
    }
}

/// The outcome of a sweep: every [`RunRecord`], queryable by axis.
#[derive(Clone, Debug)]
pub struct SweepResults {
    records: Vec<RunRecord>,
}

impl SweepResults {
    /// All records.
    pub fn records(&self) -> &[RunRecord] {
        &self.records
    }

    /// The record for an exact configuration, if present.
    pub fn get(
        &self,
        app: AppKind,
        machine: &str,
        policy: PagePolicy,
        threads: usize,
    ) -> Option<&RunRecord> {
        self.records.iter().find(|r| {
            r.app == app && r.machine == machine && r.policy == policy && r.threads == threads
        })
    }

    /// Improvement (%) of `PagePolicy::Large2M` over `PagePolicy::Small4K`
    /// for a configuration, if both runs exist.
    pub fn improvement(&self, app: AppKind, machine: &str, threads: usize) -> Option<f64> {
        let small = self.get(app, machine, PagePolicy::Small4K, threads)?;
        let large = self.get(app, machine, PagePolicy::Large2M, threads)?;
        Some((1.0 - large.seconds / small.seconds) * 100.0)
    }

    /// DTLB-miss reduction factor (4 KB ÷ 2 MB) for a configuration.
    pub fn miss_reduction(&self, app: AppKind, machine: &str, threads: usize) -> Option<f64> {
        let small = self.get(app, machine, PagePolicy::Small4K, threads)?;
        let large = self.get(app, machine, PagePolicy::Large2M, threads)?;
        Some(small.dtlb_misses() as f64 / large.dtlb_misses().max(1) as f64)
    }

    /// Parallel speedup of a configuration relative to its 1-thread run.
    pub fn speedup(
        &self,
        app: AppKind,
        machine: &str,
        policy: PagePolicy,
        threads: usize,
    ) -> Option<f64> {
        let one = self.get(app, machine, policy, 1)?;
        let n = self.get(app, machine, policy, threads)?;
        Some(one.seconds / n.seconds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lpomp_machine::opteron_2x2;

    fn small_spec() -> SweepSpec {
        SweepSpec {
            apps: vec![AppKind::Cg, AppKind::Ep],
            class: Class::S,
            machines: vec![opteron_2x2()],
            policies: vec![PagePolicy::Small4K, PagePolicy::Large2M],
            threads: vec![1, 4],
            opts: RunOpts::default(),
            backend: BackendKind::CycleExact,
        }
    }

    #[test]
    fn len_counts_the_grid() {
        let s = small_spec();
        assert_eq!(s.len(), 2 * 2 * 2);
        assert!(!s.is_empty());
    }

    #[test]
    fn oversized_thread_counts_are_skipped() {
        let mut s = small_spec();
        s.threads = vec![1, 8]; // Opteron has 4 contexts
        assert_eq!(s.len(), 2 * 2);
        let r = s.run();
        assert_eq!(r.records().len(), 4);
        assert!(r
            .get(AppKind::Cg, "Opteron", PagePolicy::Small4K, 8)
            .is_none());
    }

    #[test]
    fn sweep_queries_work() {
        let r = small_spec().run();
        assert_eq!(r.records().len(), 8);
        let imp = r.improvement(AppKind::Cg, "Opteron", 4).unwrap();
        assert!(imp > -5.0 && imp < 60.0);
        let red = r.miss_reduction(AppKind::Cg, "Opteron", 4).unwrap();
        assert!(red > 1.0, "CG reduction {red}");
        let sp = r
            .speedup(AppKind::Cg, "Opteron", PagePolicy::Small4K, 4)
            .unwrap();
        assert!(sp > 2.0, "speedup {sp}");
        assert!(r.improvement(AppKind::Mg, "Opteron", 4).is_none());
    }

    #[test]
    fn progress_callback_fires_per_run() {
        let mut calls = 0;
        small_spec().run_with_progress(|_, total| {
            calls += 1;
            assert_eq!(total, 8);
        });
        assert_eq!(calls, 8);
    }

    #[test]
    fn parallel_sweep_is_deterministic() {
        // Each grid cell is an independent simulation, so the records must
        // be *byte-identical* (RunRecord's PartialEq compares f64 fields
        // exactly) in grid order for any worker count — including counts
        // far above the host's parallelism.
        let spec = small_spec();
        let serial = spec.run_parallel(1);
        let parallel = spec.run_parallel(8);
        assert_eq!(serial.records().len(), 8);
        assert_eq!(serial.records(), parallel.records());
    }

    #[test]
    fn analytic_sweep_is_deterministic_and_ordered() {
        let spec = small_spec().with_backend(BackendKind::Analytic);
        let serial = spec.run_parallel(1);
        let parallel = spec.run_parallel(8);
        assert_eq!(serial.records(), parallel.records());
        assert!(serial.records().iter().all(|r| r.backend == "analytic"));
        // The paper's effect survives the model at sweep level too.
        let red = serial.miss_reduction(AppKind::Cg, "Opteron", 4).unwrap();
        assert!(red > 1.0, "CG analytic reduction {red}");
    }

    #[test]
    fn figure4_spec_shape() {
        let s = SweepSpec::figure4(Class::S);
        // 5 apps x 2 policies x (3 opteron + 4 xeon thread counts).
        assert_eq!(s.len(), 5 * 2 * 7);
    }
}
