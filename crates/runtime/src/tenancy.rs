//! The tenant coordinator: round-robin gang scheduling of N simulated
//! processes over one machine.
//!
//! Each tenant is a complete [`SimEngine`] (its own address space, page
//! tables, clocks, counters and daemons) plus the kernel it runs. The
//! coordinator owns the one real [`Machine`] and hands it to exactly one
//! tenant at a time for a fixed cycle timeslice, over a strict
//! grant/yield rendezvous (see [`crate::team::SliceGrant`]): the machine
//! moves *by value*, so the simulation stays fully deterministic even
//! though each tenant runs on its own OS thread.
//!
//! Per grant, the coordinator installs the tenant's residency map and
//! performs the hardware context switch ([`Machine::context_switch`]) —
//! retagging the TLBs under [`AsidMode::Tagged`] or flushing them under
//! [`AsidMode::FlushOnSwitch`] — and charges the direct switch cost. The
//! indirect cost (cold TLBs and caches, cross-tenant evictions) emerges
//! from the machine model itself.
//!
//! After every yield the coordinator asserts the *partition invariant*:
//! the per-tenant TLB counter sums must equal the machine's lifetime
//! totals exactly — no event may be lost or double-charged when the
//! machine changes hands.

use crate::team::{SimEngine, SliceGrant, SliceYield, Team};
use lpomp_machine::{AsidMode, Machine, SliceScheduler};
use lpomp_prof::{Counters, Event};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};

/// One tenant: a prepared engine plus the work to run on it.
pub struct TenantTask {
    /// Report label ("batch", "latency-0", ...).
    pub name: String,
    /// Hardware ASID the tenant's translations are tagged with. Tenant 0
    /// should use ASID 0 so a single-tenant machine is bit-identical to
    /// the unscheduled path.
    pub asid: u16,
    /// Team size — installed as the machine's SMT residency per grant.
    pub threads: usize,
    /// The engine, built against a placeholder machine (same config as
    /// the real one); the real machine arrives with the first grant.
    pub engine: Box<SimEngine>,
    /// The kernel body; its return value is the verification checksum.
    pub work: Box<dyn FnOnce(&mut Team) -> f64 + Send>,
}

/// What one tenant produced.
pub struct TenantOutcome {
    /// The tenant's label.
    pub name: String,
    /// The kernel's verification checksum.
    pub checksum: f64,
    /// Cycle at which the tenant finished (its clocks at the final
    /// yield) — colocated runtime, including descheduled time.
    pub finish_clock: u64,
    /// The engine, returned for profile/counter inspection.
    pub engine: Box<SimEngine>,
}

/// Scheduling statistics of one multi-tenant run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ScheduleStats {
    /// Timeslices granted.
    pub slices: u64,
    /// Grants that switched between different tenants.
    pub switches: u64,
    /// The global clock when the last tenant finished.
    pub makespan: u64,
}

/// Run `tasks` to completion under round-robin `timeslice` scheduling,
/// switching ASIDs per `mode`. Blocks until every tenant finishes;
/// outcomes are returned in task order.
///
/// # Panics
/// Panics if a tenant thread panics, or if the partition invariant is
/// violated (a counter bug, never a configuration problem).
pub fn run_tenants(
    machine: Machine,
    tasks: Vec<TenantTask>,
    timeslice: u64,
    mode: AsidMode,
) -> (Vec<TenantOutcome>, ScheduleStats) {
    assert!(!tasks.is_empty(), "need at least one tenant");
    let n = tasks.len();
    let mut grants: Vec<SyncSender<SliceGrant>> = Vec::with_capacity(n);
    let mut yields: Vec<Receiver<SliceYield>> = Vec::with_capacity(n);
    let mut names = Vec::with_capacity(n);
    let mut asids = Vec::with_capacity(n);
    let mut threads = Vec::with_capacity(n);
    let mut handles = Vec::with_capacity(n);
    for mut task in tasks {
        let (gtx, grx) = sync_channel::<SliceGrant>(1);
        let (ytx, yrx) = sync_channel::<SliceYield>(1);
        task.engine.attach_slice_link(grx, ytx);
        grants.push(gtx);
        yields.push(yrx);
        names.push(task.name);
        asids.push(task.asid);
        threads.push(task.threads);
        let engine = task.engine;
        let work = task.work;
        handles.push(std::thread::spawn(move || {
            let mut team = Team::Sim(engine);
            let checksum = work(&mut team);
            let Team::Sim(mut engine) = team else {
                unreachable!("tenant teams are always simulated")
            };
            engine.finish_slice();
            (checksum, engine)
        }));
    }

    let mut scheduler = SliceScheduler::new(n, timeslice);
    let mut runnable = vec![true; n];
    let mut latest = vec![Counters::new(); n];
    let mut finish = vec![0u64; n];
    let mut machine = Some(machine);
    let mut now = 0u64;
    let mut prev: Option<usize> = None;
    let mut stats = ScheduleStats::default();
    while let Some((idx, slice_end)) = scheduler.next_slice(now, &runnable) {
        let mut m = machine.take().expect("machine is home between slices");
        let switching = prev != Some(idx);
        let switch_cost = if switching && prev.is_some() {
            m.cost().context_switch
        } else {
            0
        };
        if switching {
            m.set_residency(m.config().residency(threads[idx]));
            m.context_switch(asids[idx], mode);
            if prev.is_some() {
                stats.switches += 1;
            }
        }
        stats.slices += 1;
        grants[idx]
            .send(SliceGrant {
                machine: m,
                now,
                slice_end,
                switch_cost,
            })
            .expect("tenant thread died");
        let y = yields[idx].recv().expect("tenant thread died");
        machine = Some(y.machine);
        now = now.max(y.clock);
        latest[idx] = y.counters;
        if y.finished {
            runnable[idx] = false;
            finish[idx] = y.clock;
        }
        prev = Some(idx);
        assert_partition(machine.as_ref().expect("just returned"), &latest);
    }
    stats.makespan = now;

    let outcomes = handles
        .into_iter()
        .zip(names)
        .zip(finish)
        .map(|((h, name), finish_clock)| {
            let (checksum, engine) = h.join().expect("tenant thread panicked");
            TenantOutcome {
                name,
                checksum,
                finish_clock,
                engine,
            }
        })
        .collect();
    (outcomes, stats)
}

/// The partition invariant: summed per-tenant TLB counters must equal
/// the machine's lifetime totals at every yield.
fn assert_partition(machine: &Machine, latest: &[Counters]) {
    let (d, i) = machine.tlb_totals();
    let sum = |ev: Event| latest.iter().map(|c| c.get(ev)).sum::<u64>();
    assert_eq!(
        sum(Event::DtlbHits),
        d.l1_hits + d.l2_hits,
        "DTLB hits do not partition across tenants"
    );
    assert_eq!(
        sum(Event::DtlbMisses),
        d.misses,
        "DTLB misses do not partition across tenants"
    );
    assert_eq!(
        sum(Event::DtlbL2Hits),
        d.l2_hits,
        "DTLB L2 hits do not partition across tenants"
    );
    assert_eq!(
        sum(Event::ItlbMisses),
        i.misses,
        "ITLB misses do not partition across tenants"
    );
    assert_eq!(
        sum(Event::TlbCrossEvictions),
        d.cross_asid_evictions + i.cross_asid_evictions,
        "cross-ASID evictions do not partition across tenants"
    );
}
