//! Intra-node shared-memory message passing (paper §3.3).
//!
//! Omni/SCASH originally used the SCore communication library over
//! Myrinet even within a node; the paper replaces it with *"a simple
//! shared memory message passing interface through a file memory mapped
//! into each process's space"*, with the properties:
//!
//! * single copy — the sender copies into the shared buffer; the receiver
//!   reads the buffer in place;
//! * flags signal message availability and buffer reuse;
//! * up to 32 outstanding messages per channel;
//! * messages are small (≤ 1 KB) — enough for barrier/reduction protocol
//!   traffic;
//! * the backing file uses **4 KB pages**, not large pages.
//!
//! [`Mailbox`] reproduces that design: an all-pairs matrix of fixed-slot
//! rings with atomic full/empty flags. `recv_with` hands the receiver a
//! borrowed view of the slot, preserving the single-copy property.

use std::sync::atomic::{AtomicU32, AtomicUsize, Ordering};

/// Maximum payload per message, as in the paper.
pub const MAX_MSG_BYTES: usize = 1024;
/// Outstanding messages per directed channel, as in the paper.
pub const SLOTS_PER_CHANNEL: usize = 32;

/// Errors from mailbox operations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MailboxError {
    /// Payload exceeds [`MAX_MSG_BYTES`].
    TooLarge(usize),
    /// All 32 slots of the channel are in flight.
    ChannelFull,
    /// No message available.
    Empty,
}

impl std::fmt::Display for MailboxError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MailboxError::TooLarge(n) => {
                write!(f, "message of {n} bytes exceeds {MAX_MSG_BYTES}")
            }
            MailboxError::ChannelFull => write!(f, "all {SLOTS_PER_CHANNEL} slots in flight"),
            MailboxError::Empty => write!(f, "no message available"),
        }
    }
}

impl std::error::Error for MailboxError {}

/// One message slot: a flag, a length, and a fixed buffer.
struct Slot {
    /// 0 = empty (sender may fill), 1 = full (receiver may read).
    state: AtomicU32,
    len: AtomicUsize,
    data: std::sync::Mutex<[u8; MAX_MSG_BYTES]>,
}

impl Slot {
    fn new() -> Self {
        Slot {
            state: AtomicU32::new(0),
            len: AtomicUsize::new(0),
            data: std::sync::Mutex::new([0; MAX_MSG_BYTES]),
        }
    }
}

/// A directed channel: a ring of [`SLOTS_PER_CHANNEL`] slots with
/// single-producer / single-consumer cursors.
struct Channel {
    slots: Vec<Slot>,
    head: AtomicUsize, // next slot the sender fills
    tail: AtomicUsize, // next slot the receiver drains
}

impl Channel {
    fn new() -> Self {
        Channel {
            slots: (0..SLOTS_PER_CHANNEL).map(|_| Slot::new()).collect(),
            head: AtomicUsize::new(0),
            tail: AtomicUsize::new(0),
        }
    }
}

/// The all-pairs mailbox of one node's process team.
pub struct Mailbox {
    n: usize,
    /// channels[from * n + to]
    channels: Vec<Channel>,
}

impl Mailbox {
    /// Mailbox connecting `n` processes (all ordered pairs, no self-send
    /// channel is excluded — self-sends are legal and occasionally used by
    /// collective algorithms).
    pub fn new(n: usize) -> Self {
        assert!(n > 0);
        Mailbox {
            n,
            channels: (0..n * n).map(|_| Channel::new()).collect(),
        }
    }

    /// Number of connected processes.
    pub fn processes(&self) -> usize {
        self.n
    }

    /// Total shared-region bytes this mailbox occupies (the size of the
    /// 4 KB-paged mapped file in the paper's design).
    pub fn shared_bytes(&self) -> u64 {
        (self.n * self.n * SLOTS_PER_CHANNEL * (MAX_MSG_BYTES + 16)) as u64
    }

    #[inline]
    fn channel(&self, from: usize, to: usize) -> &Channel {
        assert!(from < self.n && to < self.n, "rank out of range");
        &self.channels[from * self.n + to]
    }

    /// Non-blocking send of `msg` from `from` to `to`.
    pub fn try_send(&self, from: usize, to: usize, msg: &[u8]) -> Result<(), MailboxError> {
        if msg.len() > MAX_MSG_BYTES {
            return Err(MailboxError::TooLarge(msg.len()));
        }
        let ch = self.channel(from, to);
        let head = ch.head.load(Ordering::Relaxed);
        let slot = &ch.slots[head % SLOTS_PER_CHANNEL];
        if slot.state.load(Ordering::Acquire) != 0 {
            return Err(MailboxError::ChannelFull);
        }
        {
            // The single copy of the design: sender → shared buffer.
            let mut buf = slot
                .data
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            buf[..msg.len()].copy_from_slice(msg);
        }
        slot.len.store(msg.len(), Ordering::Relaxed);
        slot.state.store(1, Ordering::Release);
        ch.head.store(head.wrapping_add(1), Ordering::Relaxed);
        Ok(())
    }

    /// Blocking send (spins while the channel is full).
    pub fn send(&self, from: usize, to: usize, msg: &[u8]) -> Result<(), MailboxError> {
        loop {
            match self.try_send(from, to, msg) {
                Err(MailboxError::ChannelFull) => {
                    std::hint::spin_loop();
                    std::thread::yield_now();
                }
                other => return other,
            }
        }
    }

    /// Non-blocking receive on channel `from → to`; the closure sees the
    /// message *in place* (no second copy) and its return value is passed
    /// through.
    pub fn try_recv_with<R>(
        &self,
        from: usize,
        to: usize,
        f: impl FnOnce(&[u8]) -> R,
    ) -> Result<R, MailboxError> {
        let ch = self.channel(from, to);
        let tail = ch.tail.load(Ordering::Relaxed);
        let slot = &ch.slots[tail % SLOTS_PER_CHANNEL];
        if slot.state.load(Ordering::Acquire) != 1 {
            return Err(MailboxError::Empty);
        }
        let len = slot.len.load(Ordering::Relaxed);
        let r = {
            let buf = slot
                .data
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            f(&buf[..len])
        };
        slot.state.store(0, Ordering::Release);
        ch.tail.store(tail.wrapping_add(1), Ordering::Relaxed);
        Ok(r)
    }

    /// Blocking receive (spins until a message arrives).
    pub fn recv_with<R>(&self, from: usize, to: usize, f: impl FnOnce(&[u8]) -> R) -> R {
        let ch = self.channel(from, to);
        let tail = ch.tail.load(Ordering::Relaxed);
        let slot = &ch.slots[tail % SLOTS_PER_CHANNEL];
        while slot.state.load(Ordering::Acquire) != 1 {
            std::hint::spin_loop();
            std::thread::yield_now();
        }
        let len = slot.len.load(Ordering::Relaxed);
        let r = {
            let buf = slot
                .data
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            f(&buf[..len])
        };
        slot.state.store(0, Ordering::Release);
        ch.tail.store(tail.wrapping_add(1), Ordering::Relaxed);
        r
    }

    /// Convenience: blocking receive copied into an owned Vec.
    pub fn recv(&self, from: usize, to: usize) -> Vec<u8> {
        self.recv_with(from, to, |m| m.to_vec())
    }
}

/// A mailbox-based all-reduce of one `f64` (sum), the collective the
/// runtime's reductions need. Rank 0 gathers, combines, broadcasts.
pub fn allreduce_sum(mb: &Mailbox, rank: usize, value: f64) -> f64 {
    let n = mb.processes();
    if n == 1 {
        return value;
    }
    if rank == 0 {
        let mut acc = value;
        for r in 1..n {
            let v = mb.recv_with(r, 0, |m| {
                let mut b = [0u8; 8];
                b.copy_from_slice(m);
                f64::from_le_bytes(b)
            });
            acc += v;
        }
        for r in 1..n {
            mb.send(0, r, &acc.to_le_bytes()).unwrap();
        }
        acc
    } else {
        mb.send(rank, 0, &value.to_le_bytes()).unwrap();
        mb.recv_with(0, rank, |m| {
            let mut b = [0u8; 8];
            b.copy_from_slice(m);
            f64::from_le_bytes(b)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_then_recv_roundtrip() {
        let mb = Mailbox::new(2);
        mb.try_send(0, 1, b"hello").unwrap();
        let got = mb.recv(0, 1);
        assert_eq!(got, b"hello");
    }

    #[test]
    fn fifo_order_per_channel() {
        let mb = Mailbox::new(2);
        for i in 0..10u8 {
            mb.try_send(0, 1, &[i]).unwrap();
        }
        for i in 0..10u8 {
            assert_eq!(mb.recv(0, 1), vec![i]);
        }
    }

    #[test]
    fn oversized_message_rejected() {
        let mb = Mailbox::new(2);
        let big = vec![0u8; MAX_MSG_BYTES + 1];
        assert_eq!(
            mb.try_send(0, 1, &big),
            Err(MailboxError::TooLarge(MAX_MSG_BYTES + 1))
        );
        // Exactly max is fine.
        let max = vec![7u8; MAX_MSG_BYTES];
        mb.try_send(0, 1, &max).unwrap();
        assert_eq!(mb.recv(0, 1), max);
    }

    #[test]
    fn channel_capacity_is_32_outstanding() {
        let mb = Mailbox::new(2);
        for _ in 0..SLOTS_PER_CHANNEL {
            mb.try_send(0, 1, b"x").unwrap();
        }
        assert_eq!(mb.try_send(0, 1, b"x"), Err(MailboxError::ChannelFull));
        // Draining one frees one slot.
        mb.recv(0, 1);
        mb.try_send(0, 1, b"x").unwrap();
    }

    #[test]
    fn empty_channel_reports_empty() {
        let mb = Mailbox::new(2);
        assert!(matches!(
            mb.try_recv_with(0, 1, |_| ()),
            Err(MailboxError::Empty)
        ));
    }

    #[test]
    fn channels_are_independent_directions() {
        let mb = Mailbox::new(2);
        mb.try_send(0, 1, b"a").unwrap();
        mb.try_send(1, 0, b"b").unwrap();
        assert_eq!(mb.recv(1, 0), b"b");
        assert_eq!(mb.recv(0, 1), b"a");
    }

    #[test]
    fn ping_pong_across_threads() {
        let mb = Mailbox::new(2);
        std::thread::scope(|s| {
            s.spawn(|| {
                for i in 0..100u32 {
                    mb.send(0, 1, &i.to_le_bytes()).unwrap();
                    let echo = mb.recv_with(1, 0, |m| {
                        let mut b = [0u8; 4];
                        b.copy_from_slice(m);
                        u32::from_le_bytes(b)
                    });
                    assert_eq!(echo, i);
                }
            });
            s.spawn(|| {
                for _ in 0..100 {
                    let v = mb.recv(0, 1);
                    mb.send(1, 0, &v).unwrap();
                }
            });
        });
    }

    #[test]
    fn allreduce_sums_across_ranks() {
        let mb = Mailbox::new(4);
        let mut results = vec![0.0; 4];
        std::thread::scope(|s| {
            for (rank, slot) in results.iter_mut().enumerate() {
                let mb = &mb;
                s.spawn(move || {
                    *slot = allreduce_sum(mb, rank, (rank + 1) as f64);
                });
            }
        });
        for r in results {
            assert_eq!(r, 10.0);
        }
    }

    #[test]
    fn allreduce_single_rank_is_identity() {
        let mb = Mailbox::new(1);
        assert_eq!(allreduce_sum(&mb, 0, 2.5), 2.5);
    }

    #[test]
    fn shared_bytes_accounts_slots() {
        let mb = Mailbox::new(4);
        assert!(mb.shared_bytes() >= (16 * 32 * 1024) as u64);
    }
}
