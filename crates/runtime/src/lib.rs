//! # `lpomp-runtime` — OpenMP-style fork-join runtime
//!
//! The programming model of the reproduction: fork-join loop parallelism
//! over shared arrays (paper §2.2 / Fig. 1), with the §3.3 runtime pieces
//! the paper built for its modified Omni/SCASH:
//!
//! * [`shared`] — [`ShVec`], the shared-array type standing in for Omni's
//!   global-array-to-shared-pointer transformation;
//! * [`schedule`] — static/chunked/dynamic/guided loop schedules;
//! * [`team`] — the [`Team`] fork-join API on two engines: native OS
//!   threads (correctness, wall-clock) and the event-driven simulated
//!   engine over `lpomp-machine` (the paper's measurements);
//! * [`barrier`] — native sense-reversing and combining-tree barriers;
//! * [`mailbox`] — the intra-node shared-memory message layer (single
//!   copy, 32 outstanding messages, ≤ 1 KB payloads, 4 KB-paged backing).

#![warn(missing_docs)]

pub mod alloc;
pub mod barrier;
pub mod critical;
pub mod mailbox;
pub mod schedule;
pub mod shared;
pub mod team;
pub mod tenancy;

pub use alloc::{BumpAllocator, ALLOC_ALIGN};
pub use barrier::{NativeBarrier, SenseBarrier, TreeBarrier};
pub use critical::{Critical, OmpLock};
pub use mailbox::{allreduce_sum, Mailbox, MailboxError, MAX_MSG_BYTES, SLOTS_PER_CHANNEL};
pub use schedule::{plan, Plan, Schedule};
pub use shared::{ShVec, Word, ELEM_BYTES};
pub use team::{
    Body, ReduceBody, Reduction, SimEngine, SliceGrant, SliceYield, StealPolicy, Team,
    DEFAULT_QUANTUM,
};
pub use tenancy::{run_tenants, ScheduleStats, TenantOutcome, TenantTask};
