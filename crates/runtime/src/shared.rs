//! Shared arrays — the runtime's analogue of Omni's global-array
//! transformation.
//!
//! The Omni compiler rewrites every global array of an OpenMP program into
//! a pointer into a shared region (paper §3.3), so that all threads see a
//! single memory image and the runtime controls which pages back it. Here
//! that rewrite is a type: [`ShVec<T>`] couples a real Rust buffer (the
//! values the kernels actually compute with) to a *simulated virtual base
//! address* (where those bytes live in the simulated address space), so a
//! kernel's `x.get(ctx, i)` both returns the value and narrates the access
//! at the right address.
//!
//! Storage is `AtomicU64` with `Relaxed` ordering: on x86 these compile to
//! plain loads/stores, and they make the OpenMP contract ("threads write
//! disjoint elements between barriers; racy programs are wrong") free of
//! undefined behaviour at the Rust level. Synchronization between phases
//! is provided by the team barrier, which establishes the necessary
//! happens-before edges.

use lpomp_machine::MemoryCtx;
use lpomp_vm::VirtAddr;
use std::sync::atomic::{AtomicU64, Ordering};

/// Element types storable in a [`ShVec`]: fixed 8-byte encodings.
pub trait Word: Copy {
    /// Encode to the stored representation.
    fn to_bits(self) -> u64;
    /// Decode from the stored representation.
    fn from_bits(bits: u64) -> Self;
}

impl Word for f64 {
    #[inline]
    fn to_bits(self) -> u64 {
        self.to_bits()
    }
    #[inline]
    fn from_bits(bits: u64) -> Self {
        f64::from_bits(bits)
    }
}

impl Word for u64 {
    #[inline]
    fn to_bits(self) -> u64 {
        self
    }
    #[inline]
    fn from_bits(bits: u64) -> Self {
        bits
    }
}

impl Word for i64 {
    #[inline]
    fn to_bits(self) -> u64 {
        self as u64
    }
    #[inline]
    fn from_bits(bits: u64) -> Self {
        bits as i64
    }
}

impl Word for usize {
    #[inline]
    fn to_bits(self) -> u64 {
        self as u64
    }
    #[inline]
    fn from_bits(bits: u64) -> Self {
        bits as usize
    }
}

/// Bytes per element (all [`Word`] encodings are 8 bytes).
pub const ELEM_BYTES: u64 = 8;

/// A shared array living at a known simulated virtual address.
pub struct ShVec<T> {
    cells: Box<[AtomicU64]>,
    vbase: VirtAddr,
    _marker: std::marker::PhantomData<T>,
}

// Safety: all access goes through atomics.
unsafe impl<T: Send> Sync for ShVec<T> {}

impl<T: Word> ShVec<T> {
    /// A zero-initialised shared array of `len` elements whose simulated
    /// image starts at `vbase`.
    pub fn new(len: usize, vbase: VirtAddr) -> Self {
        Self::from_fn(len, vbase, |_| T::from_bits(0))
    }

    /// Build from an element function.
    pub fn from_fn(len: usize, vbase: VirtAddr, f: impl FnMut(usize) -> T) -> Self {
        let mut f = f;
        ShVec {
            cells: (0..len).map(|i| AtomicU64::new(f(i).to_bits())).collect(),
            vbase,
            _marker: std::marker::PhantomData,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True if the array is empty.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Simulated virtual base address.
    pub fn vbase(&self) -> VirtAddr {
        self.vbase
    }

    /// Size of the simulated image in bytes.
    pub fn byte_len(&self) -> u64 {
        self.cells.len() as u64 * ELEM_BYTES
    }

    /// Simulated address of element `i`.
    #[inline]
    pub fn va(&self, i: usize) -> VirtAddr {
        self.vbase.add(i as u64 * ELEM_BYTES)
    }

    /// Instrumented load of element `i`.
    #[inline]
    pub fn get(&self, ctx: &mut dyn MemoryCtx, i: usize) -> T {
        ctx.read(self.va(i));
        self.get_raw(i)
    }

    /// Instrumented store to element `i`.
    #[inline]
    pub fn set(&self, ctx: &mut dyn MemoryCtx, i: usize, v: T) {
        ctx.write(self.va(i));
        self.set_raw(i, v);
    }

    /// Uninstrumented load (setup / verification code).
    #[inline]
    pub fn get_raw(&self, i: usize) -> T {
        T::from_bits(self.cells[i].load(Ordering::Relaxed))
    }

    /// Uninstrumented store (setup / verification code).
    #[inline]
    pub fn set_raw(&self, i: usize, v: T) {
        self.cells[i].store(v.to_bits(), Ordering::Relaxed);
    }

    /// Uninstrumented copy of the contents into a `Vec`.
    pub fn to_vec(&self) -> Vec<T> {
        (0..self.len()).map(|i| self.get_raw(i)).collect()
    }

    /// Fill every element with `v` (uninstrumented).
    pub fn fill_raw(&self, v: T) {
        for c in self.cells.iter() {
            c.store(v.to_bits(), Ordering::Relaxed);
        }
    }
}

impl ShVec<u64> {
    /// Atomic fetch-add on a `u64` element (uninstrumented). Commutative,
    /// so concurrent accumulation from many threads is deterministic in
    /// its final value — the OpenMP `atomic update` construct.
    pub fn fetch_add_raw(&self, i: usize, v: u64) -> u64 {
        self.cells[i].fetch_add(v, Ordering::Relaxed)
    }
}

impl<T: Word> std::fmt::Debug for ShVec<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "ShVec {{ len: {}, vbase: {}, bytes: {} }}",
            self.len(),
            self.vbase,
            self.byte_len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lpomp_machine::NullCtx;

    #[test]
    fn word_roundtrips() {
        assert_eq!(f64::from_bits(Word::to_bits(3.25f64)), 3.25);
        assert_eq!(<f64 as Word>::from_bits((-0.5f64).to_bits()), -0.5);
        assert_eq!(<i64 as Word>::from_bits(Word::to_bits(-17i64)), -17);
        assert_eq!(<u64 as Word>::from_bits(Word::to_bits(u64::MAX)), u64::MAX);
        assert_eq!(<usize as Word>::from_bits(Word::to_bits(42usize)), 42);
    }

    #[test]
    fn addresses_are_contiguous_8_byte_slots() {
        let v: ShVec<f64> = ShVec::new(10, VirtAddr(0x1000));
        assert_eq!(v.va(0), VirtAddr(0x1000));
        assert_eq!(v.va(3), VirtAddr(0x1018));
        assert_eq!(v.byte_len(), 80);
    }

    #[test]
    fn get_set_through_ctx() {
        let v: ShVec<f64> = ShVec::new(4, VirtAddr(0x1000));
        let mut ctx = NullCtx::new(0);
        v.set(&mut ctx, 2, 9.5);
        assert_eq!(v.get(&mut ctx, 2), 9.5);
        assert_eq!(v.get_raw(2), 9.5);
        assert_eq!(v.get_raw(0), 0.0);
    }

    #[test]
    fn from_fn_and_to_vec() {
        let v: ShVec<u64> = ShVec::from_fn(5, VirtAddr(0), |i| (i * i) as u64);
        assert_eq!(v.to_vec(), vec![0, 1, 4, 9, 16]);
    }

    #[test]
    fn fill_raw() {
        let v: ShVec<f64> = ShVec::new(3, VirtAddr(0));
        v.fill_raw(1.5);
        assert_eq!(v.to_vec(), vec![1.5, 1.5, 1.5]);
    }

    #[test]
    fn fetch_add_accumulates_atomically() {
        let v: ShVec<u64> = ShVec::new(1, VirtAddr(0));
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        v.fetch_add_raw(0, 1);
                    }
                });
            }
        });
        assert_eq!(v.get_raw(0), 4000);
    }

    #[test]
    fn concurrent_disjoint_writes_are_safe() {
        let v: ShVec<u64> = ShVec::new(1000, VirtAddr(0));
        std::thread::scope(|s| {
            for t in 0..4usize {
                let v = &v;
                s.spawn(move || {
                    for i in (t..1000).step_by(4) {
                        v.set_raw(i, i as u64);
                    }
                });
            }
        });
        for i in 0..1000 {
            assert_eq!(v.get_raw(i), i as u64);
        }
    }
}
