//! The fork-join team: OpenMP's `parallel for` on two engines.
//!
//! A [`Team`] executes parallel loops either **natively** (real OS threads
//! via `std::thread::scope`, no instrumentation — used for correctness
//! tests, examples and wall-clock benchmarks) or **simulated** (logical threads
//! interleaved over the `lpomp-machine` timing model — used to reproduce
//! the paper's figures).
//!
//! The simulated engine is event-driven: at every step the logical thread
//! with the *lowest cycle clock* runs its next quantum, so threads
//! sharing a core's TLB (SMT) or a chip's L2 genuinely interleave in
//! simulated time. Loop ends are joined by a modelled barrier that
//! advances every thread to the slowest participant plus the barrier cost
//! — the fork-join semantics of the paper's Figure 1.

use crate::schedule::{plan, Plan, Schedule};
use lpomp_machine::{CaptureState, CodeWalker, Machine, MemoryCtx, NullCtx, SimCtx};
use lpomp_prof::{Counters, Event, Profile, ProfileSheet, ProfileSpec, RegionProfiler};
use lpomp_vm::{
    AddressSpace, DaemonCosts, HintSamples, Khugepaged, KhugepagedConfig, NumaDaemon,
    NumaDaemonConfig, VirtAddr, MAX_CORES, MAX_NUMA_NODES,
};
use std::collections::{BTreeMap, VecDeque};
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, SyncSender};

/// The machine, handed to a tenant engine for one scheduling slice.
///
/// Gang scheduling moves the whole [`Machine`] *by value* between the
/// tenant coordinator and exactly one engine at a time, so there is
/// never a moment where two tenants could race on hardware state — the
/// rendezvous is the synchronization.
pub struct SliceGrant {
    /// The real machine (TLBs, caches, the one shared frame pool).
    pub machine: Machine,
    /// The global scheduler clock when the slice was granted. Tenant
    /// clocks behind it were descheduled and catch up as
    /// [`Event::DeschedCycles`].
    pub now: u64,
    /// Cycle at which the slice expires; the engine yields at the first
    /// scheduling point past it.
    pub slice_end: u64,
    /// Direct context-switch cost to charge every thread (0 when the
    /// same tenant continues).
    pub switch_cost: u64,
}

/// The machine handed back to the coordinator when a slice ends.
pub struct SliceYield {
    /// The machine, returned by value.
    pub machine: Machine,
    /// True when the tenant's kernel has run to completion.
    pub finished: bool,
    /// The tenant's minimum thread clock at yield time — the cycle up to
    /// which this tenant has simulated everything.
    pub clock: u64,
    /// Aggregate counter snapshot of the tenant so far, for the
    /// coordinator's partition check (per-tenant sums must equal the
    /// machine totals).
    pub counters: Counters,
}

/// The engine side of the grant/yield rendezvous.
struct SliceLink {
    grants: Receiver<SliceGrant>,
    yields: SyncSender<SliceYield>,
    /// The placeholder machine parked while the real one is installed.
    parked: Option<Machine>,
    slice_end: u64,
    granted: bool,
}

/// Loop body type: receives the thread's memory context and an iteration
/// chunk. Must be `Sync` because the native engine calls it from many
/// threads at once.
pub type Body<'b> = &'b (dyn Fn(&mut dyn MemoryCtx, Range<usize>) + Sync);
/// One `parallel sections` section.
pub type Section<'b> = &'b (dyn Fn(&mut dyn MemoryCtx) + Sync);
/// Reducing loop body: returns the chunk's partial value.
pub type ReduceBody<'b> = &'b (dyn Fn(&mut dyn MemoryCtx, Range<usize>) -> f64 + Sync);

/// Supported reduction operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Reduction {
    /// `+` reduction.
    Sum,
    /// `max` reduction.
    Max,
    /// `min` reduction.
    Min,
}

impl Reduction {
    /// Identity element.
    pub fn identity(self) -> f64 {
        match self {
            Reduction::Sum => 0.0,
            Reduction::Max => f64::NEG_INFINITY,
            Reduction::Min => f64::INFINITY,
        }
    }

    /// Combine two partial values.
    pub fn combine(self, a: f64, b: f64) -> f64 {
        match self {
            Reduction::Sum => a + b,
            Reduction::Max => a.max(b),
            Reduction::Min => a.min(b),
        }
    }
}

/// Default iterations per simulated quantum (interleaving granularity).
pub const DEFAULT_QUANTUM: usize = 64;

/// Tunables of the hierarchical scheduler's work stealing and its
/// negotiation with the NUMA balancing daemon.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StealPolicy {
    /// Chunks one cross-node steal takes at once. Remote steals pay an
    /// interconnect round trip and drag their pages' traffic across it,
    /// so the thief grabs a batch to amortize the migration.
    pub remote_batch: usize,
    /// Work-follows-pages: consume NUMA hint-fault samples at chunk
    /// completion and re-home chunks toward the node their pages live on
    /// (ablation flag).
    pub work_follows_pages: bool,
    /// Pages-follow-work: publish each chunk's page footprint to the
    /// NUMA daemon so it prefers migrating those pages toward the node
    /// that owns the chunk (ablation flag).
    pub pages_follow_work: bool,
    /// When `false`, steal victims are picked in plain thread-id order
    /// with no own-node preference — the classic topology-blind work
    /// stealer, kept as the experiment baseline. Chunk seeding, costs
    /// and counters are unchanged, so cross-node steals still show up
    /// as [`lpomp_prof::Event::RemoteSteals`].
    pub topology_aware: bool,
}

impl Default for StealPolicy {
    fn default() -> Self {
        StealPolicy {
            remote_batch: 2,
            work_follows_pages: true,
            pages_follow_work: true,
            topology_aware: true,
        }
    }
}

/// Persistent hierarchical-scheduler state for one loop shape: chunk
/// affinities survive across instances of the same loop, so re-homing
/// decisions made in iteration *k* pay off in iteration *k+1*.
struct HierState {
    /// The loop's chunk list (also the shape fingerprint).
    chunks: Vec<Range<usize>>,
    /// Preferred NUMA node per chunk.
    affinity: Vec<usize>,
    /// Thread whose deque the chunk starts on next time.
    owner: Vec<usize>,
}

/// The simulated execution engine: machine + process + per-thread state.
pub struct SimEngine {
    /// The hardware model.
    pub machine: Machine,
    /// The (single, shared) process address space.
    pub aspace: AddressSpace,
    clocks: Vec<u64>,
    profile: Profile,
    walkers: Vec<CodeWalker>,
    placement: Vec<usize>,
    threads: usize,
    quantum: usize,
    daemon: Option<(Khugepaged, DaemonCosts)>,
    numa_daemon: Option<(NumaDaemon, DaemonCosts)>,
    profiler: Option<Box<RegionProfiler>>,
    capture: Option<Box<CaptureState>>,
    slice: Option<SliceLink>,
    sched_override: Option<Schedule>,
    steal: StealPolicy,
    hier: Vec<HierState>,
    /// Hint samples the scheduler drained mid-loop, parked for the NUMA
    /// daemon's next barrier scan.
    hint_stash: HintSamples,
    /// Pages-follow-work hints accumulated for the daemon.
    work_hints: BTreeMap<u64, usize>,
}

impl SimEngine {
    /// Build an engine for `threads` logical threads. `code` describes the
    /// instruction-fetch behaviour (cloned per thread). Placement follows
    /// the paper's rule (cores first, then SMT contexts).
    pub fn new(
        mut machine: Machine,
        aspace: AddressSpace,
        threads: usize,
        code: CodeWalker,
        quantum: usize,
    ) -> Self {
        let placement = machine.config().placement(threads);
        machine.set_residency(machine.config().residency(threads));
        SimEngine {
            machine,
            aspace,
            clocks: vec![0; threads],
            profile: Profile::new(threads),
            walkers: vec![code; threads],
            placement,
            threads,
            quantum: quantum.max(1),
            daemon: None,
            numa_daemon: None,
            profiler: None,
            capture: None,
            slice: None,
            sched_override: None,
            steal: StealPolicy::default(),
            hier: Vec::new(),
            hint_stash: HintSamples::new(),
            work_hints: BTreeMap::new(),
        }
    }

    /// Install (or clear) a schedule override. Kernels that consult
    /// [`Team::schedule_or`] run their annotated loops under it; loops
    /// with hardcoded schedules are unaffected.
    pub fn set_schedule_override(&mut self, s: Option<Schedule>) {
        self.sched_override = s;
    }

    /// The installed schedule override, if any.
    pub fn schedule_override(&self) -> Option<Schedule> {
        self.sched_override
    }

    /// Set the hierarchical scheduler's steal/negotiation policy.
    pub fn set_steal_policy(&mut self, p: StealPolicy) {
        self.steal = p;
    }

    /// The hierarchical scheduler's steal/negotiation policy.
    pub fn steal_policy(&self) -> StealPolicy {
        self.steal
    }

    /// Put the engine under timeslice scheduling: its `machine` becomes a
    /// parked placeholder, and every scheduling point (loop step, barrier)
    /// first makes sure a [`SliceGrant`] holding the real machine has
    /// arrived, yielding it back when the slice expires. Without a link
    /// attached none of the slice machinery runs.
    pub fn attach_slice_link(
        &mut self,
        grants: Receiver<SliceGrant>,
        yields: SyncSender<SliceYield>,
    ) {
        self.slice = Some(SliceLink {
            grants,
            yields,
            parked: None,
            slice_end: 0,
            granted: false,
        });
    }

    /// Block until the coordinator grants the machine (no-op when no
    /// slice link is attached or the machine is already held).
    fn ensure_granted(&mut self) {
        if self.slice.as_ref().is_some_and(|l| !l.granted) {
            self.wait_for_grant();
        }
    }

    /// Receive the next grant, install the real machine, and charge the
    /// time this tenant spent off-CPU plus the direct switch cost.
    fn wait_for_grant(&mut self) {
        let link = self.slice.as_mut().expect("no slice link attached");
        let grant = link.grants.recv().expect("tenant coordinator hung up");
        let parked = std::mem::replace(&mut self.machine, grant.machine);
        let link = self.slice.as_mut().expect("no slice link attached");
        link.parked = Some(parked);
        link.slice_end = grant.slice_end;
        link.granted = true;
        // Hint sampling is a property of the (moving) real machine; the
        // placeholder the daemon was enabled against never sees traffic.
        if self.numa_daemon.is_some() {
            self.machine.enable_hint_sampling();
        }
        let desched: Vec<u64> = self
            .clocks
            .iter()
            .map(|&c| grant.now.saturating_sub(c))
            .collect();
        let active = grant.switch_cost > 0 || desched.iter().any(|&d| d > 0);
        if active {
            self.prof_enter("os:sched");
            for (t, &wait) in desched.iter().enumerate() {
                if wait > 0 {
                    self.clocks[t] += wait;
                    self.profile.thread_mut(t).add(Event::DeschedCycles, wait);
                }
            }
            if grant.switch_cost > 0 {
                self.charge_all(grant.switch_cost);
                self.profile.thread_mut(0).bump(Event::ContextSwitches);
            }
            self.prof_exit();
        }
    }

    /// Hand the machine back to the coordinator. Pending NUMA hint
    /// samples are drained first — only this tenant ran since the grant,
    /// so they belong to its own balancing daemon (and are discarded when
    /// it has none, as the kernel does for an untracked process).
    fn yield_machine(&mut self, finished: bool) {
        let mut batch = self.machine.drain_hint_samples();
        batch.merge(std::mem::take(&mut self.hint_stash));
        if let Some((d, _)) = &mut self.numa_daemon {
            d.absorb(batch);
        }
        let clock = self.clocks.iter().copied().min().unwrap_or(0);
        let counters = self.profile.aggregate();
        let parked = self
            .slice
            .as_mut()
            .and_then(|l| l.parked.take())
            .expect("yield without a granted machine");
        let machine = std::mem::replace(&mut self.machine, parked);
        let link = self.slice.as_mut().expect("no slice link attached");
        link.granted = false;
        link.yields
            .send(SliceYield {
                machine,
                finished,
                clock,
                counters,
            })
            .expect("tenant coordinator hung up");
    }

    /// At a scheduling point: if the slice has expired (every thread
    /// clock is past its end), yield the machine and block until the next
    /// grant.
    fn maybe_slice_yield(&mut self) {
        let Some(link) = &self.slice else { return };
        if !link.granted {
            return;
        }
        let end = link.slice_end;
        if self.clocks.iter().copied().min().unwrap_or(0) < end {
            return;
        }
        self.yield_machine(false);
        self.wait_for_grant();
    }

    /// Yield the machine one final time, marking this tenant finished.
    /// Called by the tenant thread after its kernel returns; the
    /// coordinator drops the tenant from the rotation. No-op without a
    /// slice link.
    pub fn finish_slice(&mut self) {
        if self.slice.is_none() {
            return;
        }
        self.ensure_granted();
        self.yield_machine(true);
    }

    /// Start recording the reference stream (see
    /// [`lpomp_machine::capture`]). Capture observes the run without
    /// perturbing it — every charge is forwarded unchanged, and the
    /// fetch stream is regenerated by mirror walkers — so captured and
    /// uncaptured runs are cycle-identical.
    pub fn enable_capture(&mut self) {
        self.capture = Some(Box::new(CaptureState::new(self.walkers.clone())));
    }

    /// Detach the capture state (after the kernel ran) for
    /// [`CaptureState::finish`].
    pub fn take_capture(&mut self) -> Option<Box<CaptureState>> {
        self.capture.take()
    }

    /// Attach the region-attribution profiler (and, for
    /// [`ProfileSpec::Trace`], the timeline recorder). Profiling observes
    /// the run without perturbing it: no clock or counter changes, so
    /// profiled and unprofiled runs are cycle-identical.
    pub fn enable_profiling(&mut self, spec: ProfileSpec) {
        if spec.enabled() {
            self.profiler = Some(Box::new(RegionProfiler::new(
                self.placement.clone(),
                spec.wants_trace(),
            )));
        }
    }

    /// Enter a named profiling region (no-op without a profiler). Prefer
    /// the scoped [`Team::region`]; this is for callers that hold the
    /// engine directly (e.g. stop-the-world OS operations).
    pub fn region_enter(&mut self, name: &str) {
        if let Some(p) = &mut self.profiler {
            p.enter(name, &self.profile, &self.clocks);
        }
        if let Some(c) = &mut self.capture {
            c.region_enter(name);
        }
    }

    /// Exit the innermost profiling region (no-op without a profiler).
    pub fn region_exit(&mut self) {
        if let Some(p) = &mut self.profiler {
            p.exit(&self.profile, &self.clocks);
        }
        if let Some(c) = &mut self.capture {
            c.region_exit();
        }
    }

    fn prof_enter(&mut self, name: &str) {
        self.region_enter(name);
    }

    fn prof_exit(&mut self) {
        self.region_exit();
    }

    fn prof_instant(&mut self, name: &str, thread: usize) {
        if let Some(p) = &mut self.profiler {
            p.instant(name, thread, self.clocks[thread]);
        }
    }

    /// Settle and snapshot the per-region attribution (None unless
    /// [`Self::enable_profiling`] was called).
    pub fn region_sheet(&mut self) -> Option<ProfileSheet> {
        let profile = &self.profile;
        self.profiler.as_mut().map(|p| p.sheet(profile))
    }

    /// The recorded timeline as Chrome `trace_event` JSON (None unless
    /// profiling with [`ProfileSpec::Trace`]).
    pub fn trace_json(&self) -> Option<String> {
        self.profiler.as_ref().and_then(|p| p.trace_json())
    }

    /// Attach an incremental khugepaged daemon. It runs at every barrier:
    /// a budgeted scan whose cycles are charged to all cores (the daemon
    /// holds `mmap_sem`-like locks, so application threads stall), with a
    /// broadcast TLB shootdown whenever it changed any translation.
    pub fn enable_khugepaged(&mut self, cfg: KhugepagedConfig) {
        let c = self.machine.cost();
        let costs = DaemonCosts {
            // One PTE inspection: a cached read plus loop overhead.
            scan_page: c.l1_hit + 2,
            migrate_page: c.migrate_page,
            pt_edit: c.pt_edit,
        };
        self.daemon = Some((Khugepaged::new(cfg), costs));
    }

    /// The attached daemon, if any (its lifetime totals and idle state).
    pub fn daemon(&self) -> Option<&Khugepaged> {
        self.daemon.as_ref().map(|(d, _)| d)
    }

    /// Attach an AutoNUMA-style balancing daemon. The machine starts
    /// recording hinting-fault samples (which node touched which page) on
    /// every DTLB miss; at every barrier the daemon absorbs the batch and
    /// migrates pages with persistently remote accessors, charged like
    /// khugepaged: scan cycles stall all cores, migrations cost a
    /// broadcast shootdown.
    pub fn enable_numa_daemon(&mut self, cfg: NumaDaemonConfig) {
        let c = self.machine.cost();
        let costs = DaemonCosts {
            scan_page: c.l1_hit + 2,
            migrate_page: c.migrate_page,
            pt_edit: c.pt_edit,
        };
        self.machine.enable_hint_sampling();
        self.numa_daemon = Some((NumaDaemon::new(cfg), costs));
    }

    /// The attached NUMA balancing daemon, if any.
    pub fn numa_daemon(&self) -> Option<&NumaDaemon> {
        self.numa_daemon.as_ref().map(|(d, _)| d)
    }

    /// Core assigned to a logical thread.
    pub fn core_of(&self, thread: usize) -> usize {
        self.placement[thread]
    }

    /// The run's profile so far.
    pub fn profile(&self) -> &Profile {
        &self.profile
    }

    /// Critical-path cycles so far (max thread clock).
    pub fn elapsed_cycles(&self) -> u64 {
        self.clocks.iter().copied().max().unwrap_or(0)
    }

    /// Charge every thread `cycles` (stop-the-world events such as THP
    /// migration or a global TLB shootdown).
    pub fn charge_all(&mut self, cycles: u64) {
        for t in 0..self.threads {
            self.clocks[t] += cycles;
            self.profile.thread_mut(t).add(Event::Cycles, cycles);
        }
    }

    /// Flush every core's TLBs (global shootdown).
    pub fn flush_tlbs(&mut self) {
        self.machine.flush_all_tlbs();
    }

    /// Broadcast TLB shootdown with its cost: every core takes the IPI
    /// (charged to its clock) and flushes its TLBs.
    pub fn tlb_shootdown(&mut self) {
        self.charge_all(self.machine.cost().shootdown_ipi);
        self.machine.flush_all_tlbs();
        self.profile.thread_mut(0).bump(Event::TlbShootdowns);
        self.prof_instant("tlb-shootdown", 0);
    }

    /// Zero clocks and counters (keep TLB/cache state warm).
    pub fn reset_timing(&mut self) {
        self.clocks.iter_mut().for_each(|c| *c = 0);
        self.profile = Profile::new(self.threads);
        if let Some(p) = &mut self.profiler {
            p.reset();
        }
    }

    /// Run `body` over `plan` event-driven, returning per-thread partials.
    fn run(&mut self, p: &Plan, body: ReduceBody<'_>, red: Reduction) -> Vec<f64> {
        self.ensure_granted();
        let mut partials = vec![red.identity(); self.threads];
        match p {
            Plan::Fixed(per) => {
                // Cursor per thread: (chunk index, offset within chunk).
                let mut cursor: Vec<(usize, usize)> = vec![(0, 0); self.threads];
                loop {
                    self.maybe_slice_yield();
                    // Lowest-clock unfinished thread runs next.
                    let mut next: Option<usize> = None;
                    for t in 0..self.threads {
                        let (ci, _) = cursor[t];
                        if ci < per[t].len() && next.is_none_or(|b| self.clocks[t] < self.clocks[b])
                        {
                            next = Some(t);
                        }
                    }
                    let Some(t) = next else { break };
                    let (ci, off) = cursor[t];
                    let chunk = &per[t][ci];
                    let start = chunk.start + off;
                    let end = (start + self.quantum).min(chunk.end);
                    let v = self.exec_quantum(t, start..end, body);
                    partials[t] = red.combine(partials[t], v);
                    if end == chunk.end {
                        cursor[t] = (ci + 1, 0);
                    } else {
                        cursor[t] = (ci, off + (end - start));
                    }
                }
            }
            Plan::Queue(q) => {
                // Dynamic self-scheduling: the thread with the lowest clock
                // claims the next chunk — the deterministic analogue of a
                // shared iteration counter.
                let mut qi = 0usize;
                let mut current: Vec<Option<(Range<usize>, usize)>> = vec![None; self.threads];
                loop {
                    self.maybe_slice_yield();
                    let mut next: Option<usize> = None;
                    #[allow(clippy::needless_range_loop)] // t indexes three arrays
                    for t in 0..self.threads {
                        let has_work = current[t].is_some() || qi < q.len();
                        if has_work && next.is_none_or(|b| self.clocks[t] < self.clocks[b]) {
                            next = Some(t);
                        }
                    }
                    let Some(t) = next else { break };
                    if current[t].is_none() {
                        if qi >= q.len() {
                            // Another thread should claim instead; mark this
                            // thread idle by skipping (it had no work).
                            break;
                        }
                        current[t] = Some((q[qi].clone(), 0));
                        qi += 1;
                    }
                    let (chunk, off) = current[t].clone().unwrap();
                    let start = chunk.start + off;
                    let end = (start + self.quantum).min(chunk.end);
                    let v = self.exec_quantum(t, start..end, body);
                    partials[t] = red.combine(partials[t], v);
                    if end == chunk.end {
                        current[t] = None;
                    } else {
                        current[t] = Some((chunk, off + (end - start)));
                    }
                }
            }
            Plan::Hier(per) => self.run_hier(per, body, red, &mut partials),
        }
        partials
    }

    /// Charge one thread's clock (scheduler bookkeeping ops).
    fn charge_one(&mut self, t: usize, cycles: u64) {
        self.clocks[t] += cycles;
        self.profile.thread_mut(t).add(Event::Cycles, cycles);
    }

    /// The hierarchical work-stealing loop: per-thread deques seeded from
    /// the static partition (or the persistent re-homed assignment when
    /// this loop shape ran before), locality-preferring stealing, and the
    /// two-way negotiation with the NUMA daemon. Deterministic: the
    /// lowest-clock thread always acts next, and steal victim order is a
    /// pure function of the topology.
    fn run_hier(
        &mut self,
        per: &[Vec<Range<usize>>],
        body: ReduceBody<'_>,
        red: Reduction,
        partials: &mut [f64],
    ) {
        let pol = self.steal;
        let negotiate = pol.work_follows_pages || pol.pages_follow_work;
        if negotiate {
            // Enabling sampling resets the machine's pending batch, so
            // park whatever is there first (the daemon gets it later).
            let pending = self.machine.drain_hint_samples();
            self.hint_stash.merge(pending);
            self.machine.enable_hint_sampling();
        }
        let threads = self.threads;
        let my_node: Vec<usize> = (0..threads)
            .map(|t| self.machine.config().node_of_core(self.placement[t]))
            .collect();
        let max_node = my_node.iter().copied().max().unwrap_or(0);
        let mut threads_on: Vec<Vec<usize>> = vec![Vec::new(); max_node + 1];
        for (t, &n) in my_node.iter().enumerate() {
            threads_on[n].push(t);
        }
        // Victim preference per thief: own node's threads first (ascending
        // id), then remote threads (ascending id). A topology-blind
        // policy flattens this to plain id order.
        let victims: Vec<Vec<usize>> = (0..threads)
            .map(|t| {
                if !pol.topology_aware {
                    return (0..threads).filter(|&u| u != t).collect();
                }
                let mut v: Vec<usize> = (0..threads)
                    .filter(|&u| u != t && my_node[u] == my_node[t])
                    .collect();
                v.extend((0..threads).filter(|&u| my_node[u] != my_node[t]));
                v
            })
            .collect();
        // Find (or seed) the persistent state for this loop shape.
        let chunks: Vec<Range<usize>> = per.iter().flatten().cloned().collect();
        let si = match self.hier.iter().position(|s| s.chunks == chunks) {
            Some(i) => i,
            None => {
                // Chunk → plan-owner thread; affinity seeds from that
                // owner's node — under static first-touch init that is
                // where the chunk's pages physically live.
                let mut owner = Vec::with_capacity(chunks.len());
                for (t, deque) in per.iter().enumerate() {
                    owner.extend(std::iter::repeat_n(t, deque.len()));
                }
                let affinity: Vec<usize> = owner.iter().map(|&t| my_node[t]).collect();
                self.hier.push(HierState {
                    chunks: chunks.clone(),
                    affinity,
                    owner,
                });
                self.hier.len() - 1
            }
        };
        let mut deques: Vec<VecDeque<usize>> = vec![VecDeque::new(); threads];
        for (c, &o) in self.hier[si].owner.iter().enumerate() {
            deques[o].push_back(c);
        }
        let cm = *self.machine.cost();
        // (chunk index, offset within chunk) being executed per thread.
        let mut active: Vec<Option<(usize, usize)>> = vec![None; threads];
        loop {
            self.maybe_slice_yield();
            let queued = deques.iter().any(|d| !d.is_empty());
            let mut next: Option<usize> = None;
            #[allow(clippy::needless_range_loop)] // t indexes several arrays
            for t in 0..threads {
                let has_work = active[t].is_some() || queued;
                if has_work && next.is_none_or(|b| self.clocks[t] < self.clocks[b]) {
                    next = Some(t);
                }
            }
            let Some(t) = next else { break };
            if active[t].is_none() {
                let c = if let Some(c) = deques[t].pop_front() {
                    self.charge_one(t, cm.queue_op);
                    c
                } else {
                    // Own deque dry: steal. `queued` guarantees a victim.
                    let v = victims[t]
                        .iter()
                        .copied()
                        .find(|&u| !deques[u].is_empty())
                        .expect("queued work must have a victim");
                    self.prof_enter("rt:steal");
                    if my_node[v] != my_node[t] {
                        // Remote: take a batch off the victim's tail,
                        // preserving chunk order.
                        let k = pol.remote_batch.max(1).min(deques[v].len());
                        let mut tail = Vec::with_capacity(k);
                        for _ in 0..k {
                            tail.push(deques[v].pop_back().expect("victim emptied"));
                        }
                        tail.reverse();
                        deques[t].extend(tail);
                        self.charge_one(t, cm.steal_remote);
                        self.profile.thread_mut(t).bump(Event::RemoteSteals);
                    } else {
                        let c = deques[v].pop_back().expect("victim emptied");
                        deques[t].push_back(c);
                        self.charge_one(t, cm.steal_local);
                        self.profile.thread_mut(t).bump(Event::LocalSteals);
                    }
                    self.prof_exit();
                    deques[t].pop_front().expect("thief's deque stocked")
                };
                if my_node[t] == self.hier[si].affinity[c] {
                    self.profile.thread_mut(t).bump(Event::AffinityHits);
                }
                active[t] = Some((c, 0));
            }
            let (c, off) = active[t].expect("selected thread has a chunk");
            let chunk = self.hier[si].chunks[c].clone();
            let start = chunk.start + off;
            let end = (start + self.quantum).min(chunk.end);
            let v = self.exec_quantum(t, start..end, body);
            partials[t] = red.combine(partials[t], v);
            if end == chunk.end {
                active[t] = None;
                if negotiate {
                    self.negotiate_chunk(si, c, t, &threads_on);
                }
            } else {
                active[t] = Some((c, off + (end - start)));
            }
        }
    }

    /// Chunk-completion negotiation. Drains the machine's hint samples;
    /// pages the completing thread's *core* touched (per-core tallies, so
    /// node-mates' concurrent chunks don't pollute the attribution)
    /// approximate the chunk's footprint. Work-follows-pages re-homes the
    /// chunk when a majority of that footprint lives on another
    /// (populated) node; pages-follow-work publishes `page → chunk home`
    /// hints the daemon weighs when judging migrations. All drained
    /// samples are stashed for the daemon regardless.
    fn negotiate_chunk(&mut self, si: usize, c: usize, t: usize, threads_on: &[Vec<usize>]) {
        let batch = self.machine.drain_hint_samples();
        let core = self.placement[t].min(MAX_CORES - 1);
        let mut home_tally = [0u64; MAX_NUMA_NODES];
        let mut touched: Vec<u64> = Vec::new();
        for (page, tally) in batch.iter_cores() {
            let weight = tally[core];
            if weight == 0 {
                continue;
            }
            let Some(tr) = self.aspace.page_table().probe(VirtAddr(page)) else {
                continue;
            };
            let home = self.machine.frames.node_of(tr.pa.frame_base(tr.size));
            home_tally[home.min(MAX_NUMA_NODES - 1)] += weight;
            touched.push(page);
        }
        self.hint_stash.merge(batch);
        if self.steal.work_follows_pages {
            let total: u64 = home_tally.iter().sum();
            let dominant = home_tally
                .iter()
                .enumerate()
                .max_by_key(|&(n, &v)| (v, std::cmp::Reverse(n)))
                .map(|(n, _)| n)
                .unwrap_or(0);
            // Majority of the footprint on one node, with enough evidence.
            if total >= 4 && home_tally[dominant] * 2 > total {
                let cur = self.hier[si].affinity[c];
                let populated = threads_on.get(dominant).is_some_and(|v| !v.is_empty());
                if dominant != cur && populated {
                    self.hier[si].affinity[c] = dominant;
                    // Deterministic spread over the node's threads.
                    let slots = &threads_on[dominant];
                    self.hier[si].owner[c] = slots[c % slots.len()];
                    self.profile.thread_mut(t).bump(Event::ChunkRehomes);
                }
            }
        }
        if self.steal.pages_follow_work {
            let home = self.hier[si].affinity[c];
            for &page in &touched {
                self.work_hints.insert(page, home);
            }
        }
    }

    /// Execute one quantum on logical thread `t`.
    fn exec_quantum(&mut self, t: usize, r: Range<usize>, body: ReduceBody<'_>) -> f64 {
        let core = self.placement[t];
        let ctx = SimCtx::new(
            &mut self.machine,
            &mut self.aspace,
            self.profile.thread_mut(t),
            &mut self.clocks[t],
            &mut self.walkers[t],
            core,
            t,
        );
        match &mut self.capture {
            Some(cap) => {
                let mut ctx = cap.ctx(ctx, t);
                body(&mut ctx, r)
            }
            None => {
                let mut ctx = ctx;
                body(&mut ctx, r)
            }
        }
    }

    /// Join all threads at a barrier: everyone advances to the maximum
    /// clock plus the modelled barrier cost.
    fn barrier_sync(&mut self) {
        self.ensure_granted();
        if let Some(c) = &mut self.capture {
            c.barrier();
        }
        self.prof_enter("rt:barrier");
        let max = self.elapsed_cycles();
        let cost = self.machine.cost().barrier_cycles(self.threads);
        for t in 0..self.threads {
            let wait = max - self.clocks[t] + cost;
            let c = self.profile.thread_mut(t);
            c.bump(Event::Barriers);
            c.add(Event::BarrierCycles, wait);
            c.add(Event::Cycles, wait);
            self.clocks[t] = max + cost;
        }
        self.prof_exit();
        self.daemon_step();
        // Attribution must never lose or invent an event: every region sum
        // equals the global counter, checked at each join in debug builds.
        #[cfg(debug_assertions)]
        if let Some(p) = &mut self.profiler {
            p.check_conservation(&self.profile);
        }
        // The barrier (and the daemon work it hosts) is the natural
        // scheduling point for gang-scheduled tenants: the machine is
        // still held here, so khugepaged above operated on real frames.
        self.maybe_slice_yield();
    }

    /// Extra page-table edits per edit when per-node replication is on:
    /// every edit is re-applied to each other node's replica.
    fn replica_edit_factor(&self) -> u64 {
        match &self.machine.config().numa {
            Some(n) if n.replicate_pt => n.nodes as u64 - 1,
            _ => 0,
        }
    }

    /// Run the barrier-time daemons (khugepaged, then the NUMA balancer)
    /// and charge their work to the simulated timeline: every core stalls
    /// for the scan's cycles, and any translation change costs a
    /// broadcast shootdown IPI plus a full TLB flush on every core. With
    /// replicated page tables every PTE edit a daemon makes is broadcast
    /// to the other nodes' replicas, so replication taxes the daemons too.
    fn daemon_step(&mut self) {
        let replica = self.replica_edit_factor();
        if let Some((mut daemon, costs)) = self.daemon.take() {
            let out = daemon
                .scan(&mut self.aspace, &mut self.machine.frames, &costs)
                .expect("khugepaged scan failed");
            // Split the charge into the scan/collapse share and the
            // compaction share so each lands in its own region; the two
            // sum exactly to the single pre-split charge.
            let compact_share = out.compact_cycles + out.compact_pt_edits * replica * costs.pt_edit;
            let scan_share = (out.cycles - out.compact_cycles)
                + (out.pt_edits - out.compact_pt_edits) * replica * costs.pt_edit;
            let cycles = scan_share + compact_share;
            let active = cycles > 0 || out.shootdown;
            if active {
                self.prof_enter("os:khugepaged");
            }
            if scan_share > 0 {
                self.charge_all(scan_share);
            }
            if compact_share > 0 {
                self.prof_enter("os:compaction");
                self.charge_all(compact_share);
                self.prof_exit();
            }
            if out.shootdown {
                self.tlb_shootdown();
            }
            // Daemon activity is bookkept on the master thread's sheet.
            let c = self.profile.thread_mut(0);
            c.add(Event::DaemonCycles, cycles);
            c.add(Event::PagesCollapsed, out.collapsed);
            c.add(Event::PagesCompacted, out.compact_migrated);
            c.add(Event::PagesDemoted, out.demoted);
            if active {
                self.prof_exit();
            }
            self.daemon = Some((daemon, costs));
        }
        if let Some((mut daemon, costs)) = self.numa_daemon.take() {
            let mut batch = self.machine.drain_hint_samples();
            batch.merge(std::mem::take(&mut self.hint_stash));
            daemon.absorb(batch);
            if self.steal.pages_follow_work && !self.work_hints.is_empty() {
                daemon.set_work_hints(std::mem::take(&mut self.work_hints));
            }
            let out = daemon
                .scan(&mut self.aspace, &mut self.machine.frames, &costs)
                .expect("numa balancing scan failed");
            let cycles = out.cycles + out.pt_edits * replica * costs.pt_edit;
            let active = cycles > 0 || out.shootdown;
            if active {
                self.prof_enter("os:numa");
            }
            if cycles > 0 {
                self.charge_all(cycles);
            }
            if out.migrated > 0 {
                self.prof_instant("numa-migration", 0);
            }
            if out.shootdown {
                self.tlb_shootdown();
            }
            let c = self.profile.thread_mut(0);
            c.add(Event::DaemonCycles, cycles);
            c.add(Event::PagesMigrated, out.migrated);
            if active {
                self.prof_exit();
            }
            self.numa_daemon = Some((daemon, costs));
        } else {
            // No balancer: scheduler-drained samples and published hints
            // have no consumer; drop them so they can't grow unbounded.
            self.hint_stash = HintSamples::new();
            self.work_hints.clear();
        }
    }

    /// Run a master-only (OpenMP `single`) section on thread 0, then join.
    fn single(&mut self, body: &mut dyn FnMut(&mut dyn MemoryCtx)) {
        self.ensure_granted();
        let core = self.placement[0];
        let ctx = SimCtx::new(
            &mut self.machine,
            &mut self.aspace,
            self.profile.thread_mut(0),
            &mut self.clocks[0],
            &mut self.walkers[0],
            core,
            0,
        );
        match &mut self.capture {
            Some(cap) => {
                let mut ctx = cap.ctx(ctx, 0);
                body(&mut ctx);
            }
            None => {
                let mut ctx = ctx;
                body(&mut ctx);
            }
        }
        self.barrier_sync();
    }
}

/// A fork-join thread team bound to one of the two engines.
pub enum Team {
    /// Real OS threads, no instrumentation.
    Native {
        /// Number of worker threads.
        threads: usize,
    },
    /// Logical threads over the machine model.
    Sim(Box<SimEngine>),
}

impl Team {
    /// A native team of `threads` OS threads.
    pub fn native(threads: usize) -> Self {
        assert!(threads > 0);
        Team::Native { threads }
    }

    /// A simulated team around a prepared engine.
    pub fn simulated(engine: SimEngine) -> Self {
        Team::Sim(Box::new(engine))
    }

    /// Team size.
    pub fn threads(&self) -> usize {
        match self {
            Team::Native { threads } => *threads,
            Team::Sim(e) => e.threads,
        }
    }

    /// The schedule a kernel's *annotated* loop should use: the engine's
    /// override when one is installed (see
    /// [`SimEngine::set_schedule_override`]), else `default`. Kernels
    /// whose loops hardcode a schedule are unaffected — opting in is what
    /// lets experiments swap policies without perturbing other kernels.
    pub fn schedule_or(&self, default: Schedule) -> Schedule {
        match self {
            Team::Sim(e) => e.sched_override.unwrap_or(default),
            Team::Native { .. } => default,
        }
    }

    /// Borrow the simulated engine, if any.
    pub fn engine(&self) -> Option<&SimEngine> {
        match self {
            Team::Sim(e) => Some(e),
            Team::Native { .. } => None,
        }
    }

    /// Mutably borrow the simulated engine, if any.
    pub fn engine_mut(&mut self) -> Option<&mut SimEngine> {
        match self {
            Team::Sim(e) => Some(e),
            Team::Native { .. } => None,
        }
    }

    /// Run `f` inside a named profiling region: every counter increment
    /// while `f` executes is attributed to `name` (innermost wins when
    /// regions nest). A no-op without an attached profiler — kernels stay
    /// annotated on both engines at zero cost.
    ///
    /// Regions are control-flow scoped, entered and exited between
    /// parallel loops, so `f` receives the team back for its loops:
    ///
    /// ```ignore
    /// team.region("cg:matvec", |team| Self::matvec(team, d, 2));
    /// ```
    pub fn region<R>(&mut self, name: &str, f: impl FnOnce(&mut Team) -> R) -> R {
        if let Team::Sim(e) = self {
            e.prof_enter(name);
        }
        let out = f(self);
        if let Team::Sim(e) = self {
            e.prof_exit();
        }
        out
    }

    /// Per-region attribution so far (simulated teams with profiling on).
    pub fn region_sheet(&mut self) -> Option<ProfileSheet> {
        self.engine_mut().and_then(SimEngine::region_sheet)
    }

    /// Chrome `trace_event` JSON of the run so far (simulated teams
    /// profiling with [`ProfileSpec::Trace`]).
    pub fn trace_json(&self) -> Option<String> {
        self.engine().and_then(SimEngine::trace_json)
    }

    /// `#pragma omp parallel for schedule(...)` with an implicit barrier.
    pub fn parallel_for(&mut self, range: Range<usize>, schedule: Schedule, body: Body<'_>) {
        self.parallel_for_reduce(range, schedule, Reduction::Sum, &|ctx, r| {
            body(ctx, r);
            0.0
        });
    }

    /// `#pragma omp parallel for reduction(op)` with an implicit barrier.
    pub fn parallel_for_reduce(
        &mut self,
        range: Range<usize>,
        schedule: Schedule,
        red: Reduction,
        body: ReduceBody<'_>,
    ) -> f64 {
        let threads = self.threads();
        let p = plan(range, threads, schedule);
        match self {
            Team::Sim(e) => {
                let partials = e.run(&p, body, red);
                e.barrier_sync();
                partials
                    .into_iter()
                    .fold(red.identity(), |a, b| red.combine(a, b))
            }
            Team::Native { threads } => {
                let threads = *threads;
                // The native engine has no simulated clock to order steals
                // by, so hierarchical plans degrade to true self-scheduling
                // over the same chunks (correctness-identical).
                let p = match p {
                    Plan::Hier(per) => Plan::Queue(per.into_iter().flatten().collect()),
                    other => other,
                };
                match p {
                    Plan::Fixed(per) => {
                        let partials: Vec<f64> = std::thread::scope(|s| {
                            let handles: Vec<_> = per
                                .into_iter()
                                .enumerate()
                                .map(|(t, chunks)| {
                                    s.spawn(move || {
                                        let mut ctx = NullCtx::new(t);
                                        let mut acc = red.identity();
                                        for c in chunks {
                                            acc = red.combine(acc, body(&mut ctx, c));
                                        }
                                        acc
                                    })
                                })
                                .collect();
                            handles
                                .into_iter()
                                .map(|h| h.join().expect("worker panicked"))
                                .collect()
                        });
                        partials
                            .into_iter()
                            .fold(red.identity(), |a, b| red.combine(a, b))
                    }
                    Plan::Queue(q) => {
                        // True self-scheduling with a shared chunk counter.
                        let next = AtomicUsize::new(0);
                        let q = &q;
                        let next_ref = &next;
                        let partials: Vec<f64> = std::thread::scope(|s| {
                            let handles: Vec<_> = (0..threads)
                                .map(|t| {
                                    s.spawn(move || {
                                        let mut ctx = NullCtx::new(t);
                                        let mut acc = red.identity();
                                        loop {
                                            let i = next_ref.fetch_add(1, Ordering::Relaxed);
                                            if i >= q.len() {
                                                break;
                                            }
                                            acc = red.combine(acc, body(&mut ctx, q[i].clone()));
                                        }
                                        acc
                                    })
                                })
                                .collect();
                            handles
                                .into_iter()
                                .map(|h| h.join().expect("worker panicked"))
                                .collect()
                        });
                        partials
                            .into_iter()
                            .fold(red.identity(), |a, b| red.combine(a, b))
                    }
                    Plan::Hier(_) => unreachable!("flattened above"),
                }
            }
        }
    }

    /// `#pragma omp parallel sections`: each section runs exactly once,
    /// distributed across the team (dynamic claiming), with the implicit
    /// barrier at the end.
    pub fn parallel_sections(&mut self, sections: &[Section<'_>]) {
        self.parallel_for(0..sections.len(), Schedule::Dynamic(1), &|ctx, r| {
            for i in r {
                sections[i](ctx);
            }
        });
    }

    /// `#pragma omp single`: `body` runs once (on the master), then all
    /// threads join.
    pub fn single(&mut self, body: &mut dyn FnMut(&mut dyn MemoryCtx)) {
        match self {
            Team::Sim(e) => e.single(body),
            Team::Native { .. } => {
                let mut ctx = NullCtx::new(0);
                body(&mut ctx);
            }
        }
    }

    /// Explicit barrier (`#pragma omp barrier`). Native teams synchronize
    /// implicitly at loop ends, so this is a no-op there.
    pub fn barrier(&mut self) {
        if let Team::Sim(e) = self {
            e.barrier_sync();
        }
    }

    /// Critical-path cycles (simulated teams; 0 for native).
    pub fn elapsed_cycles(&self) -> u64 {
        match self {
            Team::Sim(e) => e.elapsed_cycles(),
            Team::Native { .. } => 0,
        }
    }

    /// Critical-path seconds at the machine's clock (simulated teams).
    pub fn elapsed_seconds(&self) -> f64 {
        match self {
            Team::Sim(e) => e.machine.cost().seconds(e.elapsed_cycles()),
            Team::Native { .. } => 0.0,
        }
    }

    /// The run profile (simulated teams).
    pub fn profile(&self) -> Option<&Profile> {
        self.engine().map(SimEngine::profile)
    }

    /// Aggregate counters (simulated teams; empty otherwise).
    pub fn aggregate_counters(&self) -> Counters {
        self.profile().map(Profile::aggregate).unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shared::ShVec;
    use lpomp_machine::opteron_2x2;
    use lpomp_vm::{Backing, PageSize, Populate, PteFlags, VirtAddr};

    fn sim_team(threads: usize) -> (Team, VirtAddr) {
        let mut machine = Machine::new(opteron_2x2());
        let mut aspace = AddressSpace::new(&mut machine.frames).unwrap();
        let code = aspace
            .mmap_fixed(
                &mut machine.frames,
                VirtAddr(0x40_0000),
                1 << 20,
                PageSize::Small4K,
                PteFlags::rx(),
                Backing::Anonymous,
                Populate::Eager,
                "code",
            )
            .unwrap();
        let data = aspace
            .mmap(
                &mut machine.frames,
                16 << 20,
                PageSize::Small4K,
                PteFlags::rw(),
                Backing::Anonymous,
                Populate::Eager,
                "data",
            )
            .unwrap();
        let walker = CodeWalker::new(code, 1 << 20, 64 << 10, 1000);
        let engine = SimEngine::new(machine, aspace, threads, walker, DEFAULT_QUANTUM);
        (Team::simulated(engine), data)
    }

    #[test]
    fn native_parallel_for_computes_correctly() {
        let mut team = Team::native(4);
        let v: ShVec<f64> = ShVec::new(1000, VirtAddr(0x1000));
        team.parallel_for(0..1000, Schedule::Static, &|ctx, r| {
            for i in r {
                v.set(ctx, i, (i * 2) as f64);
            }
        });
        for i in 0..1000 {
            assert_eq!(v.get_raw(i), (i * 2) as f64);
        }
    }

    #[test]
    fn native_reduction_sums() {
        let mut team = Team::native(3);
        let s = team.parallel_for_reduce(1..101, Schedule::Dynamic(7), Reduction::Sum, &|_, r| {
            r.map(|i| i as f64).sum()
        });
        assert_eq!(s, 5050.0);
    }

    #[test]
    fn native_reduction_max_min() {
        let mut team = Team::native(4);
        let mx = team.parallel_for_reduce(0..100, Schedule::Static, Reduction::Max, &|_, r| {
            r.map(|i| i as f64).fold(f64::NEG_INFINITY, f64::max)
        });
        assert_eq!(mx, 99.0);
        let mn = team.parallel_for_reduce(5..100, Schedule::Guided(4), Reduction::Min, &|_, r| {
            r.map(|i| i as f64).fold(f64::INFINITY, f64::min)
        });
        assert_eq!(mn, 5.0);
    }

    #[test]
    fn sim_parallel_for_computes_and_charges_time() {
        let (mut team, data) = sim_team(4);
        let v: ShVec<f64> = ShVec::new(10_000, data);
        team.parallel_for(0..10_000, Schedule::Static, &|ctx, r| {
            for i in r {
                v.set(ctx, i, i as f64);
                ctx.compute(4);
            }
        });
        for i in 0..10_000 {
            assert_eq!(v.get_raw(i), i as f64);
        }
        assert!(team.elapsed_cycles() > 10_000);
        let agg = team.aggregate_counters();
        assert_eq!(agg.get(Event::Stores), 10_000);
        assert_eq!(agg.get(Event::Barriers), 4);
    }

    #[test]
    fn sim_reduction_matches_native() {
        let (mut team, _) = sim_team(3);
        let s = team.parallel_for_reduce(1..101, Schedule::Static, Reduction::Sum, &|_, r| {
            r.map(|i| i as f64).sum()
        });
        assert_eq!(s, 5050.0);
    }

    #[test]
    fn sim_dynamic_schedule_covers_all_iterations() {
        let (mut team, data) = sim_team(4);
        let v: ShVec<u64> = ShVec::new(503, data);
        team.parallel_for(0..503, Schedule::Dynamic(16), &|ctx, r| {
            for i in r {
                let cur = v.get(ctx, i);
                v.set(ctx, i, cur + 1);
            }
        });
        for i in 0..503 {
            assert_eq!(v.get_raw(i), 1, "iteration {i}");
        }
    }

    #[test]
    fn more_threads_less_time() {
        let run = |threads: usize| {
            let (mut team, data) = sim_team(threads);
            let v: ShVec<f64> = ShVec::new(100_000, data);
            team.parallel_for(0..100_000, Schedule::Static, &|ctx, r| {
                for i in r {
                    v.set(ctx, i, 1.0);
                    ctx.compute(8);
                }
            });
            team.elapsed_cycles()
        };
        let t1 = run(1);
        let t4 = run(4);
        assert!(
            t4 * 2 < t1,
            "4 threads ({t4}) should be at least 2x faster than 1 ({t1})"
        );
    }

    #[test]
    fn barrier_aligns_clocks() {
        let (mut team, data) = sim_team(2);
        let v: ShVec<f64> = ShVec::new(1000, data);
        // Imbalanced loop: thread 0 does nothing, thread 1 works.
        team.parallel_for(0..1000, Schedule::Static, &|ctx, r| {
            for i in r {
                if i >= 500 {
                    v.set(ctx, i, 1.0);
                    ctx.compute(100);
                }
            }
        });
        let e = team.engine().unwrap();
        assert_eq!(e.clocks[0], e.clocks[1], "barrier must align clocks");
        let p = team.profile().unwrap();
        assert!(p.thread(0).get(Event::BarrierCycles) > 0);
    }

    #[test]
    fn single_runs_once_and_joins() {
        let (mut team, data) = sim_team(4);
        let v: ShVec<u64> = ShVec::new(1, data);
        team.single(&mut |ctx| {
            let cur = v.get(ctx, 0);
            v.set(ctx, 0, cur + 1);
        });
        assert_eq!(v.get_raw(0), 1);
        let e = team.engine().unwrap();
        let c0 = e.clocks[0];
        assert!(e.clocks.iter().all(|&c| c == c0));
    }

    #[test]
    fn reset_timing_zeroes_clocks_but_keeps_warm_state() {
        let (mut team, data) = sim_team(2);
        let v: ShVec<f64> = ShVec::new(100, data);
        team.parallel_for(0..100, Schedule::Static, &|ctx, r| {
            for i in r {
                v.set(ctx, i, 1.0);
            }
        });
        assert!(team.elapsed_cycles() > 0);
        team.engine_mut().unwrap().reset_timing();
        assert_eq!(team.elapsed_cycles(), 0);
        assert_eq!(team.aggregate_counters().get(Event::Stores), 0);
    }

    #[test]
    fn parallel_sections_run_each_once() {
        use std::sync::atomic::{AtomicU32, Ordering};
        let counters: Vec<AtomicU32> = (0..5).map(|_| AtomicU32::new(0)).collect();
        let mut team = Team::native(3);
        type BoxedSection<'a> = Box<dyn Fn(&mut dyn MemoryCtx) + Sync + 'a>;
        let sections: Vec<BoxedSection<'_>> = (0..5)
            .map(|i| {
                let c = &counters[i];
                Box::new(move |_: &mut dyn MemoryCtx| {
                    c.fetch_add(1, Ordering::SeqCst);
                }) as BoxedSection<'_>
            })
            .collect();
        let refs: Vec<Section<'_>> = sections.iter().map(|b| b.as_ref()).collect();
        team.parallel_sections(&refs);
        for (i, c) in counters.iter().enumerate() {
            assert_eq!(c.load(Ordering::SeqCst), 1, "section {i}");
        }
    }

    #[test]
    fn sim_parallel_sections_distribute_across_threads() {
        let (mut team, data) = sim_team(4);
        let v: ShVec<u64> = ShVec::new(8, data);
        type BoxedSection<'a> = Box<dyn Fn(&mut dyn MemoryCtx) + Sync + 'a>;
        let sections: Vec<BoxedSection<'_>> = (0..8)
            .map(|i| {
                let v = &v;
                Box::new(move |ctx: &mut dyn MemoryCtx| {
                    let owner = (ctx.thread_id() + 1) as u64;
                    v.set(ctx, i, owner);
                    ctx.compute(1000);
                }) as BoxedSection<'_>
            })
            .collect();
        let refs: Vec<Section<'_>> = sections.iter().map(|b| b.as_ref()).collect();
        team.parallel_sections(&refs);
        // Every section ran (nonzero marker), and more than one thread
        // participated.
        let owners: std::collections::HashSet<u64> = (0..8).map(|i| v.get_raw(i)).collect();
        assert!(!owners.contains(&0));
        assert!(owners.len() > 1, "sections all ran on one thread");
    }

    #[test]
    fn khugepaged_runs_at_barriers_and_is_charged() {
        use lpomp_vm::{AccessKind, KhugepagedConfig, PageSize as Ps};
        let (mut team, data) = sim_team(4);
        team.engine_mut()
            .unwrap()
            .enable_khugepaged(KhugepagedConfig::default());
        let v: ShVec<f64> = ShVec::new(10_000, data);
        // Several loops → several barriers → several daemon scans.
        for _ in 0..8 {
            team.parallel_for(0..10_000, Schedule::Static, &|ctx, r| {
                for i in r {
                    v.set(ctx, i, i as f64);
                }
            });
        }
        for i in 0..10_000 {
            assert_eq!(v.get_raw(i), i as f64);
        }
        let e = team.engine_mut().unwrap();
        // The eagerly populated 16 MB data region got collapsed…
        let t = e
            .aspace
            .access(&mut e.machine.frames, data, AccessKind::Read)
            .unwrap()
            .translation();
        assert_eq!(t.size, Ps::Large2M);
        let d = e.daemon().unwrap();
        assert!(d.totals().collapsed >= 8, "16 MB = 8 chunks");
        assert!(d.is_idle(), "steady state must go idle");
        // …and the work is visible in the profile, charged to the clock.
        let p = team.profile().unwrap();
        assert!(p.thread(0).get(Event::PagesCollapsed) >= 8);
        assert!(p.thread(0).get(Event::DaemonCycles) > 0);
        assert!(p.thread(0).get(Event::TlbShootdowns) >= 1);
    }

    #[test]
    fn numa_daemon_migrates_remote_pages_at_barriers() {
        use lpomp_machine::{NumaConfig, NumaPlacement};
        use lpomp_vm::NumaDaemonConfig;
        let mut cfg = opteron_2x2();
        cfg.numa = Some(NumaConfig::opteron(NumaPlacement::MasterNode));
        let mut machine = Machine::new(cfg);
        let mut aspace = AddressSpace::new(&mut machine.frames).unwrap();
        let code = aspace
            .mmap_fixed(
                &mut machine.frames,
                VirtAddr(0x40_0000),
                1 << 20,
                PageSize::Small4K,
                PteFlags::rx(),
                Backing::Anonymous,
                Populate::Eager,
                "code",
            )
            .unwrap();
        // Eagerly populated with no placement policy: the whole 8 MB heap
        // starts on node 0, like master-thread initialization would leave it.
        let data = aspace
            .mmap(
                &mut machine.frames,
                8 << 20,
                PageSize::Small4K,
                PteFlags::rw(),
                Backing::Anonymous,
                Populate::Eager,
                "data",
            )
            .unwrap();
        let walker = CodeWalker::new(code, 1 << 20, 64 << 10, 1000);
        let engine = SimEngine::new(machine, aspace, 4, walker, DEFAULT_QUANTUM);
        let mut team = Team::simulated(engine);
        team.engine_mut()
            .unwrap()
            .enable_numa_daemon(NumaDaemonConfig::default());
        let n = (8 << 20) / 8;
        let v: ShVec<f64> = ShVec::new(n, data);
        // Static partitioning puts the upper half of the heap under
        // threads 2 and 3, which run on chip 1 = node 1: persistently
        // remote, so the balancer must move their partitions over.
        for _ in 0..8 {
            team.parallel_for(0..n, Schedule::Static, &|ctx, r| {
                for i in r {
                    v.set(ctx, i, i as f64);
                }
            });
        }
        for i in (0..n).step_by(997) {
            assert_eq!(v.get_raw(i), i as f64);
        }
        let agg = team.aggregate_counters();
        assert!(agg.get(Event::NumaHintFaults) > 0, "sampling must be live");
        let p = team.profile().unwrap();
        assert!(p.thread(0).get(Event::PagesMigrated) > 0);
        assert!(p.thread(0).get(Event::DaemonCycles) > 0);
        assert!(p.thread(0).get(Event::TlbShootdowns) >= 1);
        let e = team.engine().unwrap();
        assert!(e.numa_daemon().unwrap().totals().migrated > 0);
        // A page deep in thread 3's partition now lives on node 1.
        let probe = data.add((8 << 20) * 7 / 8);
        let t = e.aspace.page_table().probe(probe).unwrap();
        assert_eq!(e.machine.frames.node_of(t.pa), 1);
    }

    #[test]
    fn empty_range_is_fine_on_both_engines() {
        let mut nat = Team::native(4);
        nat.parallel_for(10..10, Schedule::Static, &|_, _| panic!("no work"));
        let (mut sim, _) = sim_team(2);
        sim.parallel_for(10..10, Schedule::Dynamic(4), &|_, _| panic!("no work"));
        let (mut sim, _) = sim_team(2);
        sim.parallel_for(10..10, Schedule::Hierarchical { chunk: 4 }, &|_, _| {
            panic!("no work")
        });
    }

    #[test]
    fn hierarchical_covers_iterations_steals_and_conserves() {
        let (mut team, data) = sim_team(4);
        team.engine_mut()
            .unwrap()
            .enable_profiling(ProfileSpec::Regions);
        let v: ShVec<f64> = ShVec::new(4096, data);
        // Skewed load: late iterations are far dearer, so the static
        // seeding leaves thread 3 overloaded and the others must steal.
        team.parallel_for(0..4096, Schedule::Hierarchical { chunk: 64 }, &|ctx, r| {
            for i in r {
                v.set(ctx, i, i as f64);
                ctx.compute((i as u64) / 4);
            }
        });
        for i in 0..4096 {
            assert_eq!(v.get_raw(i), i as f64, "iteration {i}");
        }
        let agg = team.aggregate_counters();
        let steals = agg.get(Event::LocalSteals) + agg.get(Event::RemoteSteals);
        assert!(steals > 0, "the skew must trigger steals");
        assert!(agg.get(Event::AffinityHits) > 0, "owned chunks count hits");
        let sheet = team.region_sheet().unwrap();
        let steal_region = sheet.by_name("rt:steal").expect("rt:steal attributed");
        assert!(sheet.region_total(steal_region).get(Event::Cycles) > 0);
        assert_eq!(sheet.total(), agg, "conservation with rt:steal present");
    }

    #[test]
    fn hierarchical_native_and_reductions_agree() {
        let mut nat = Team::native(4);
        let s = nat.parallel_for_reduce(
            1..101,
            Schedule::Hierarchical { chunk: 8 },
            Reduction::Sum,
            &|_, r| r.map(|i| i as f64).sum(),
        );
        assert_eq!(s, 5050.0);
        let (mut sim, _) = sim_team(3);
        let m = sim.parallel_for_reduce(
            0..1000,
            Schedule::Hierarchical { chunk: 16 },
            Reduction::Max,
            &|_, r| r.map(|i| i as f64).fold(f64::NEG_INFINITY, f64::max),
        );
        assert_eq!(m, 999.0);
    }

    #[test]
    fn hierarchical_profiling_never_perturbs() {
        let run = |spec: Option<ProfileSpec>| {
            let (mut team, data) = sim_team(4);
            if let Some(s) = spec {
                team.engine_mut().unwrap().enable_profiling(s);
            }
            let v: ShVec<f64> = ShVec::new(5000, data);
            team.region("work", |team| {
                team.parallel_for(0..5000, Schedule::Hierarchical { chunk: 64 }, &|ctx, r| {
                    for i in r {
                        v.set(ctx, i, 1.0);
                        ctx.compute(i as u64 / 16);
                    }
                });
            });
            (team.elapsed_cycles(), team.aggregate_counters())
        };
        let bare = run(None);
        assert_eq!(bare, run(Some(ProfileSpec::Regions)));
        assert_eq!(bare, run(Some(ProfileSpec::Trace)));
    }

    #[test]
    fn hierarchical_runs_are_deterministic() {
        let run = || {
            let (mut team, data) = sim_team(4);
            let v: ShVec<f64> = ShVec::new(8192, data);
            for _ in 0..3 {
                team.parallel_for(0..8192, Schedule::Hierarchical { chunk: 32 }, &|ctx, r| {
                    for i in r {
                        v.set(ctx, i, i as f64);
                        ctx.compute(i as u64 / 8);
                    }
                });
            }
            (team.elapsed_cycles(), team.aggregate_counters())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn work_follows_pages_rehomes_remote_chunks() {
        use lpomp_machine::{NumaConfig, NumaPlacement};
        let mut cfg = opteron_2x2();
        cfg.numa = Some(NumaConfig::opteron(NumaPlacement::MasterNode));
        let mut machine = Machine::new(cfg);
        let mut aspace = AddressSpace::new(&mut machine.frames).unwrap();
        let code = aspace
            .mmap_fixed(
                &mut machine.frames,
                VirtAddr(0x40_0000),
                1 << 20,
                PageSize::Small4K,
                PteFlags::rx(),
                Backing::Anonymous,
                Populate::Eager,
                "code",
            )
            .unwrap();
        // The whole 4 MB heap starts on node 0 (master-node placement):
        // chunks seeded to node 1's threads find all their pages remote.
        let data = aspace
            .mmap(
                &mut machine.frames,
                4 << 20,
                PageSize::Small4K,
                PteFlags::rw(),
                Backing::Anonymous,
                Populate::Eager,
                "data",
            )
            .unwrap();
        let walker = CodeWalker::new(code, 1 << 20, 64 << 10, 1000);
        let engine = SimEngine::new(machine, aspace, 4, walker, DEFAULT_QUANTUM);
        let mut team = Team::simulated(engine);
        let n = (4 << 20) / 8;
        let v: ShVec<f64> = ShVec::new(n, data);
        for _ in 0..4 {
            team.parallel_for(0..n, Schedule::Hierarchical { chunk: 2048 }, &|ctx, r| {
                for i in r {
                    v.set(ctx, i, i as f64);
                }
            });
        }
        for i in (0..n).step_by(997) {
            assert_eq!(v.get_raw(i), i as f64);
        }
        let agg = team.aggregate_counters();
        assert!(agg.get(Event::NumaHintFaults) > 0, "sampling must be live");
        assert!(
            agg.get(Event::ChunkRehomes) > 0,
            "all-remote chunks must re-home toward their pages"
        );
    }

    #[test]
    fn steal_policy_ablation_flags_disable_negotiation() {
        let (mut team, data) = sim_team(4);
        let e = team.engine_mut().unwrap();
        e.set_steal_policy(StealPolicy {
            work_follows_pages: false,
            pages_follow_work: false,
            ..StealPolicy::default()
        });
        assert!(!e.steal_policy().work_follows_pages);
        let v: ShVec<f64> = ShVec::new(4096, data);
        team.parallel_for(0..4096, Schedule::Hierarchical { chunk: 64 }, &|ctx, r| {
            for i in r {
                v.set(ctx, i, 1.0);
                ctx.compute(i as u64 / 4);
            }
        });
        let agg = team.aggregate_counters();
        // No negotiation: no sampling turned on, no re-homes published.
        assert_eq!(agg.get(Event::ChunkRehomes), 0);
        assert_eq!(agg.get(Event::NumaHintFaults), 0);
    }

    #[test]
    fn schedule_override_is_consulted_only_via_schedule_or() {
        let (mut team, _) = sim_team(2);
        assert_eq!(team.schedule_or(Schedule::Static), Schedule::Static);
        team.engine_mut()
            .unwrap()
            .set_schedule_override(Some(Schedule::Hierarchical { chunk: 32 }));
        assert_eq!(
            team.schedule_or(Schedule::Static),
            Schedule::Hierarchical { chunk: 32 }
        );
        assert_eq!(
            team.engine().unwrap().schedule_override(),
            Some(Schedule::Hierarchical { chunk: 32 })
        );
        // Native teams never override.
        let nat = Team::native(2);
        assert_eq!(nat.schedule_or(Schedule::Static), Schedule::Static);
    }

    #[test]
    fn regions_attribute_work_and_conserve_counters() {
        let (mut team, data) = sim_team(4);
        team.engine_mut()
            .unwrap()
            .enable_profiling(ProfileSpec::Regions);
        let v: ShVec<f64> = ShVec::new(10_000, data);
        team.region("init", |team| {
            team.parallel_for(0..10_000, Schedule::Static, &|ctx, r| {
                for i in r {
                    v.set(ctx, i, i as f64);
                }
            });
        });
        team.region("sum", |team| {
            team.parallel_for_reduce(0..10_000, Schedule::Static, Reduction::Sum, &|ctx, r| {
                r.map(|i| v.get(ctx, i)).sum()
            })
        });
        let sheet = team.region_sheet().unwrap();
        let init = sheet.by_name("init").unwrap();
        let sum = sheet.by_name("sum").unwrap();
        // Stores belong to init, loads to sum; barrier waits went to the
        // automatic rt:barrier region nested inside each.
        assert_eq!(sheet.region_total(init).get(Event::Stores), 10_000);
        assert_eq!(sheet.region_total(init).get(Event::Loads), 0);
        assert_eq!(sheet.region_total(sum).get(Event::Loads), 10_000);
        let barrier = sheet.by_name("rt:barrier").unwrap();
        assert_eq!(sheet.region_total(barrier).get(Event::Barriers), 8);
        // Exact conservation against the global profile.
        assert_eq!(sheet.total(), team.aggregate_counters());
    }

    #[test]
    fn profiling_never_perturbs_the_run() {
        let run = |spec: Option<ProfileSpec>| {
            let (mut team, data) = sim_team(4);
            if let Some(s) = spec {
                team.engine_mut().unwrap().enable_profiling(s);
            }
            let v: ShVec<f64> = ShVec::new(5000, data);
            team.region("work", |team| {
                team.parallel_for(0..5000, Schedule::Dynamic(64), &|ctx, r| {
                    for i in r {
                        v.set(ctx, i, 1.0);
                        ctx.compute(3);
                    }
                });
            });
            (team.elapsed_cycles(), team.aggregate_counters())
        };
        let bare = run(None);
        assert_eq!(bare, run(Some(ProfileSpec::Regions)));
        assert_eq!(bare, run(Some(ProfileSpec::Trace)));
    }

    #[test]
    fn daemon_episodes_get_their_own_regions() {
        use lpomp_vm::KhugepagedConfig;
        let (mut team, data) = sim_team(4);
        let e = team.engine_mut().unwrap();
        e.enable_khugepaged(KhugepagedConfig::default());
        e.enable_profiling(ProfileSpec::Trace);
        let v: ShVec<f64> = ShVec::new(10_000, data);
        for _ in 0..8 {
            team.region("loop", |team| {
                team.parallel_for(0..10_000, Schedule::Static, &|ctx, r| {
                    for i in r {
                        v.set(ctx, i, i as f64);
                    }
                });
            });
        }
        let sheet = team.region_sheet().unwrap();
        let os = sheet.by_name("os:khugepaged").unwrap();
        let os_total = sheet.region_total(os);
        assert!(os_total.get(Event::Cycles) > 0, "daemon work attributed");
        assert!(os_total.get(Event::TlbShootdowns) >= 1);
        assert_eq!(sheet.total(), team.aggregate_counters());
        // The timeline saw the collapse episodes and their shootdowns.
        let json = team.trace_json().unwrap();
        let doc = lpomp_prof::parse_json(&json).unwrap();
        let events = doc
            .get("traceEvents")
            .and_then(lpomp_prof::Json::as_arr)
            .unwrap();
        let named = |n: &str, ph: &str| {
            events.iter().any(|e| {
                e.get("name").and_then(lpomp_prof::Json::as_str) == Some(n)
                    && e.get("ph").and_then(lpomp_prof::Json::as_str) == Some(ph)
            })
        };
        assert!(named("os:khugepaged", "B"));
        assert!(named("rt:barrier", "B"));
        assert!(named("loop", "B"));
        assert!(named("tlb-shootdown", "i"));
        assert!(named("core 0 thread 0", "M") || named("thread_name", "M"));
    }

    #[test]
    fn reset_timing_clears_attribution_too() {
        let (mut team, data) = sim_team(2);
        team.engine_mut()
            .unwrap()
            .enable_profiling(ProfileSpec::Regions);
        let v: ShVec<f64> = ShVec::new(100, data);
        team.region("warmup", |team| {
            team.parallel_for(0..100, Schedule::Static, &|ctx, r| {
                for i in r {
                    v.set(ctx, i, 0.0);
                }
            });
        });
        team.engine_mut().unwrap().reset_timing();
        let sheet = team.region_sheet().unwrap();
        assert_eq!(sheet.total(), Counters::new());
        assert_eq!(sheet.total(), team.aggregate_counters());
    }
}
