//! Loop schedules — OpenMP's `schedule(static|dynamic|guided)` clause.
//!
//! The paper's workloads are classic `#pragma omp parallel for` loops
//! (§3.1); how iterations map to threads decides which pages each thread
//! touches and therefore its TLB behaviour. [`plan`] computes the chunk
//! sequence deterministically, which both engines consume: the native
//! engine hands chunks to real threads (using an atomic counter for true
//! dynamic self-scheduling), while the simulated engine replays the plan
//! with clock-ordered chunk claiming.

use std::ops::Range;

/// An OpenMP-style loop schedule.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Schedule {
    /// Contiguous near-equal blocks, one per thread (OpenMP default).
    Static,
    /// Round-robin chunks of the given size (`schedule(static, n)`).
    StaticChunk(usize),
    /// Self-scheduled chunks of the given size (`schedule(dynamic, n)`).
    Dynamic(usize),
    /// Exponentially shrinking chunks with the given minimum
    /// (`schedule(guided, n)`).
    Guided(usize),
    /// Topology-aware work stealing: each thread starts from the static
    /// contiguous partition it would own under [`Schedule::Static`]
    /// (preserving first-touch page affinity), cut into chunks of the
    /// given size and held in a per-thread deque. Idle threads steal —
    /// preferring victims on their own NUMA node, falling back to remote
    /// nodes with larger batches — under a deterministic simulated-time
    /// order (see the runtime engine).
    Hierarchical {
        /// Chunk granularity of the per-thread deques.
        chunk: usize,
    },
}

/// The precomputed chunk structure of one parallel loop.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Plan {
    /// `per_thread[t]` is the fixed chunk list of thread `t`.
    Fixed(Vec<Vec<Range<usize>>>),
    /// A shared queue of chunks claimed in order (dynamic/guided).
    Queue(Vec<Range<usize>>),
    /// `per_thread[t]` is the *initial* deque of thread `t`
    /// (hierarchical work stealing); chunks may migrate between threads
    /// at run time, unlike [`Plan::Fixed`].
    Hier(Vec<Vec<Range<usize>>>),
}

impl Plan {
    /// Total iterations covered by the plan.
    pub fn total_iterations(&self) -> usize {
        match self {
            Plan::Fixed(per) | Plan::Hier(per) => per.iter().flatten().map(|r| r.len()).sum(),
            Plan::Queue(q) => q.iter().map(|r| r.len()).sum(),
        }
    }

    /// Every chunk in the plan, in an arbitrary order.
    pub fn chunks(&self) -> Vec<Range<usize>> {
        match self {
            Plan::Fixed(per) | Plan::Hier(per) => per.iter().flatten().cloned().collect(),
            Plan::Queue(q) => q.clone(),
        }
    }
}

/// Compute the chunk plan for `range` across `threads` threads.
pub fn plan(range: Range<usize>, threads: usize, schedule: Schedule) -> Plan {
    assert!(threads > 0, "a team needs at least one thread");
    let n = range.len();
    match schedule {
        Schedule::Static => {
            // First `rem` threads get one extra iteration, like libgomp.
            let base = n / threads;
            let rem = n % threads;
            let mut start = range.start;
            let per = (0..threads)
                .map(|t| {
                    let len = base + usize::from(t < rem);
                    let r = start..start + len;
                    start += len;
                    if r.is_empty() {
                        vec![]
                    } else {
                        vec![r]
                    }
                })
                .collect();
            Plan::Fixed(per)
        }
        Schedule::StaticChunk(chunk) => {
            let chunk = chunk.max(1);
            let mut per = vec![Vec::new(); threads];
            let mut start = range.start;
            let mut t = 0;
            while start < range.end {
                let end = (start + chunk).min(range.end);
                per[t].push(start..end);
                start = end;
                t = (t + 1) % threads;
            }
            Plan::Fixed(per)
        }
        Schedule::Dynamic(chunk) => {
            let chunk = chunk.max(1);
            let mut q = Vec::with_capacity(n / chunk + 1);
            let mut start = range.start;
            while start < range.end {
                let end = (start + chunk).min(range.end);
                q.push(start..end);
                start = end;
            }
            Plan::Queue(q)
        }
        Schedule::Guided(min_chunk) => {
            let min_chunk = min_chunk.max(1);
            let mut q = Vec::new();
            let mut start = range.start;
            while start < range.end {
                let remaining = range.end - start;
                // libgomp-style: remaining / threads, floored at min_chunk.
                let len = (remaining / threads).max(min_chunk).min(remaining);
                q.push(start..start + len);
                start += len;
            }
            Plan::Queue(q)
        }
        Schedule::Hierarchical { chunk } => {
            let chunk = chunk.max(1);
            // Same contiguous partition as Static (so first-touch homes
            // line up with each deque's owner), then cut into chunks.
            let base = n / threads;
            let rem = n % threads;
            let mut start = range.start;
            let per = (0..threads)
                .map(|t| {
                    let len = base + usize::from(t < rem);
                    let end = start + len;
                    let mut deque = Vec::with_capacity(len / chunk + 1);
                    while start < end {
                        let cend = (start + chunk).min(end);
                        deque.push(start..cend);
                        start = cend;
                    }
                    deque
                })
                .collect();
            Plan::Hier(per)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn covers_exactly(p: &Plan, range: Range<usize>) {
        let mut cover = vec![0u32; range.end];
        for c in p.chunks() {
            for i in c {
                cover[i] += 1;
            }
        }
        for i in range.clone() {
            assert_eq!(cover[i], 1, "iteration {i} covered {} times", cover[i]);
        }
        assert_eq!(p.total_iterations(), range.len());
    }

    #[test]
    fn static_split_is_contiguous_and_balanced() {
        let p = plan(0..10, 3, Schedule::Static);
        covers_exactly(&p, 0..10);
        let Plan::Fixed(per) = &p else { panic!() };
        assert_eq!(per[0], vec![0..4]);
        assert_eq!(per[1], vec![4..7]);
        assert_eq!(per[2], vec![7..10]);
    }

    #[test]
    fn static_with_more_threads_than_iterations() {
        let p = plan(0..2, 4, Schedule::Static);
        covers_exactly(&p, 0..2);
        let Plan::Fixed(per) = &p else { panic!() };
        assert!(per[2].is_empty() && per[3].is_empty());
    }

    #[test]
    fn static_chunk_round_robin() {
        let p = plan(0..10, 2, Schedule::StaticChunk(3));
        covers_exactly(&p, 0..10);
        let Plan::Fixed(per) = &p else { panic!() };
        assert_eq!(per[0], vec![0..3, 6..9]);
        assert_eq!(per[1], vec![3..6, 9..10]);
    }

    #[test]
    fn dynamic_queue_chunks() {
        let p = plan(0..10, 4, Schedule::Dynamic(4));
        covers_exactly(&p, 0..10);
        let Plan::Queue(q) = &p else { panic!() };
        assert_eq!(q, &vec![0..4, 4..8, 8..10]);
    }

    #[test]
    fn guided_chunks_shrink() {
        let p = plan(0..1000, 4, Schedule::Guided(10));
        covers_exactly(&p, 0..1000);
        let Plan::Queue(q) = &p else { panic!() };
        // First chunk is remaining/threads = 250; they shrink monotonically
        // until the floor.
        assert_eq!(q[0], 0..250);
        for w in q.windows(2) {
            assert!(w[1].len() <= w[0].len());
        }
        assert!(!q.last().unwrap().is_empty());
    }

    #[test]
    fn empty_range_everywhere() {
        for s in [
            Schedule::Static,
            Schedule::StaticChunk(4),
            Schedule::Dynamic(4),
            Schedule::Guided(4),
            Schedule::Hierarchical { chunk: 4 },
        ] {
            let p = plan(5..5, 3, s);
            assert_eq!(p.total_iterations(), 0);
        }
    }

    #[test]
    fn hierarchical_deques_mirror_the_static_partition() {
        let p = plan(0..10, 3, Schedule::Hierarchical { chunk: 2 });
        covers_exactly(&p, 0..10);
        let Plan::Hier(per) = &p else { panic!() };
        // Thread t's deque spans exactly its Static partition…
        assert_eq!(per[0], vec![0..2, 2..4]);
        assert_eq!(per[1], vec![4..6, 6..7]);
        assert_eq!(per[2], vec![7..9, 9..10]);
        // …so concatenating deques re-creates the Static split.
        let stat = plan(0..10, 3, Schedule::Static);
        let Plan::Fixed(sper) = &stat else { panic!() };
        for t in 0..3 {
            let lo = per[t].first().unwrap().start;
            let hi = per[t].last().unwrap().end;
            assert_eq!(lo..hi, sper[t][0]);
        }
    }

    #[test]
    fn hierarchical_zero_chunk_is_clamped() {
        let p = plan(0..4, 2, Schedule::Hierarchical { chunk: 0 });
        covers_exactly(&p, 0..4);
    }

    #[test]
    fn zero_chunk_is_clamped() {
        let p = plan(0..4, 2, Schedule::Dynamic(0));
        covers_exactly(&p, 0..4);
    }

    #[test]
    fn nonzero_range_start_respected() {
        let p = plan(100..110, 3, Schedule::Static);
        covers_exactly(&p, 100..110);
        for c in p.chunks() {
            assert!(c.start >= 100 && c.end <= 110);
        }
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_panics() {
        plan(0..10, 0, Schedule::Static);
    }
}
