//! Barriers for the native engine.
//!
//! Omni/SCASH implements barriers over its intra-node communication layer
//! (paper §3.3); our native engine provides two classic shared-memory
//! algorithms — a centralized sense-reversing barrier and a software
//! combining tree — both usable from real threads. The simulated engine
//! does not execute these (it synchronizes clocks analytically using the
//! cost model), but ablation A2 benchmarks them against each other.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// Common interface of the native barrier algorithms.
pub trait NativeBarrier: Sync {
    /// Block until all `n` participants have arrived. `tid` is the
    /// caller's dense thread id in `0..n`.
    fn wait(&self, tid: usize);

    /// Number of participants.
    fn participants(&self) -> usize;
}

/// Centralized sense-reversing barrier: one atomic counter plus a global
/// sense flag; each thread keeps a local sense it flips per episode.
/// O(n) contention on one cache line, but the simplest correct choice.
pub struct SenseBarrier {
    n: usize,
    count: AtomicUsize,
    sense: AtomicBool,
    local_sense: Vec<AtomicBool>,
}

impl SenseBarrier {
    /// Barrier for `n` threads.
    pub fn new(n: usize) -> Self {
        assert!(n > 0);
        SenseBarrier {
            n,
            count: AtomicUsize::new(0),
            sense: AtomicBool::new(false),
            local_sense: (0..n).map(|_| AtomicBool::new(true)).collect(),
        }
    }
}

impl NativeBarrier for SenseBarrier {
    fn wait(&self, tid: usize) {
        let my_sense = self.local_sense[tid].load(Ordering::Relaxed);
        if self.count.fetch_add(1, Ordering::AcqRel) == self.n - 1 {
            // Last arrival: reset and release everyone.
            self.count.store(0, Ordering::Relaxed);
            self.sense.store(my_sense, Ordering::Release);
        } else {
            while self.sense.load(Ordering::Acquire) != my_sense {
                std::hint::spin_loop();
                std::thread::yield_now();
            }
        }
        self.local_sense[tid].store(!my_sense, Ordering::Relaxed);
    }

    fn participants(&self) -> usize {
        self.n
    }
}

/// Software combining-tree barrier: arrivals propagate up a binary tree of
/// sense-reversing nodes, the root releases downward. O(log n) critical
/// path, less contention per cache line than the centralized barrier.
pub struct TreeBarrier {
    n: usize,
    /// One counter + sense per internal node; node 0 is the root.
    nodes: Vec<TreeNode>,
    local_sense: Vec<AtomicBool>,
}

struct TreeNode {
    expected: usize,
    count: AtomicUsize,
    sense: AtomicBool,
}

impl TreeBarrier {
    /// Barrier for `n` threads with fan-in 2.
    pub fn new(n: usize) -> Self {
        assert!(n > 0);
        // A simple two-level scheme: pair leaves combine into a root wave.
        // For the thread counts of this paper (≤8) one internal node per
        // pair plus a root gives the right O(log n) structure.
        let leaf_groups = n.div_ceil(2);
        let mut nodes = Vec::with_capacity(leaf_groups + 1);
        // Root expects one arrival per leaf group.
        nodes.push(TreeNode {
            expected: leaf_groups,
            count: AtomicUsize::new(0),
            sense: AtomicBool::new(false),
        });
        for g in 0..leaf_groups {
            let members = if 2 * g + 1 < n { 2 } else { 1 };
            nodes.push(TreeNode {
                expected: members,
                count: AtomicUsize::new(0),
                sense: AtomicBool::new(false),
            });
        }
        TreeBarrier {
            n,
            nodes,
            local_sense: (0..n).map(|_| AtomicBool::new(true)).collect(),
        }
    }
}

impl NativeBarrier for TreeBarrier {
    fn wait(&self, tid: usize) {
        let my_sense = self.local_sense[tid].load(Ordering::Relaxed);
        let leaf = 1 + tid / 2;
        let node = &self.nodes[leaf];
        if node.count.fetch_add(1, Ordering::AcqRel) == node.expected - 1 {
            node.count.store(0, Ordering::Relaxed);
            // Last in the group: arrive at the root.
            let root = &self.nodes[0];
            if root.count.fetch_add(1, Ordering::AcqRel) == root.expected - 1 {
                root.count.store(0, Ordering::Relaxed);
                root.sense.store(my_sense, Ordering::Release);
            } else {
                while root.sense.load(Ordering::Acquire) != my_sense {
                    std::hint::spin_loop();
                    std::thread::yield_now();
                }
            }
            // Release the group.
            node.sense.store(my_sense, Ordering::Release);
        } else {
            while node.sense.load(Ordering::Acquire) != my_sense {
                std::hint::spin_loop();
                std::thread::yield_now();
            }
        }
        self.local_sense[tid].store(!my_sense, Ordering::Relaxed);
    }

    fn participants(&self) -> usize {
        self.n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    fn exercise(b: &dyn NativeBarrier, episodes: usize) {
        let n = b.participants();
        let phase_sum = AtomicU64::new(0);
        std::thread::scope(|s| {
            for tid in 0..n {
                let phase_sum = &phase_sum;
                s.spawn(move || {
                    for e in 0..episodes {
                        // Every thread adds its phase; after the barrier the
                        // total must be exactly n * e for everyone.
                        phase_sum.fetch_add(1, Ordering::SeqCst);
                        b.wait(tid);
                        let v = phase_sum.load(Ordering::SeqCst);
                        assert!(v >= ((e + 1) * n) as u64, "tid {tid} episode {e}: saw {v}");
                        b.wait(tid);
                    }
                });
            }
        });
        assert_eq!(phase_sum.load(Ordering::SeqCst), (episodes * n) as u64);
    }

    #[test]
    fn sense_barrier_synchronizes() {
        for n in [1, 2, 3, 4, 8] {
            exercise(&SenseBarrier::new(n), 50);
        }
    }

    #[test]
    fn tree_barrier_synchronizes() {
        for n in [1, 2, 3, 4, 5, 8] {
            exercise(&TreeBarrier::new(n), 50);
        }
    }

    #[test]
    fn barriers_are_reusable_many_times() {
        let b = SenseBarrier::new(2);
        exercise(&b, 500);
        let t = TreeBarrier::new(2);
        exercise(&t, 500);
    }

    #[test]
    fn single_thread_barrier_never_blocks() {
        let b = SenseBarrier::new(1);
        for _ in 0..10 {
            b.wait(0);
        }
        let t = TreeBarrier::new(1);
        for _ in 0..10 {
            t.wait(0);
        }
    }
}
