//! The shared-region allocator Omni's transformed globals draw from.
//!
//! Omni/SCASH allocates all global and dynamic memory *at process startup*
//! from the node's shared mapped file (paper §3.3), which is precisely
//! what lets the large-page policy apply to every shared array at once.
//! [`BumpAllocator`] is that allocator: a monotonic carver over a virtual
//! range, with cache-line alignment so separately allocated arrays never
//! share a line (no false sharing between threads working on different
//! arrays).

use crate::shared::{ShVec, Word, ELEM_BYTES};
use lpomp_vm::VirtAddr;

/// Alignment applied to every allocation (one cache line).
pub const ALLOC_ALIGN: u64 = 64;
/// Allocations of at least a page are page-aligned, as Omni's shared-region
/// allocator does (the region itself is page-granular).
pub const PAGE_ALIGN: u64 = 4096;

#[inline]
fn align_for(bytes: u64) -> u64 {
    if bytes >= PAGE_ALIGN {
        PAGE_ALIGN
    } else {
        ALLOC_ALIGN
    }
}

/// A monotonic allocator over a virtual address range, optionally with a
/// secondary region for small allocations (the paper's §6 future-work
/// suggestion: "allocate a mix of large pages for the bigger allocations
/// and the typical 4KB pages for the smaller allocations").
#[derive(Debug)]
pub struct BumpAllocator {
    base: VirtAddr,
    next: u64,
    limit: u64,
    /// Optional (base, next, limit, threshold): allocations smaller than
    /// `threshold` bytes are served from this secondary region.
    small: Option<SmallRegion>,
}

#[derive(Debug)]
struct SmallRegion {
    base: VirtAddr,
    next: u64,
    limit: u64,
    threshold: u64,
}

impl BumpAllocator {
    /// Allocator over `[base, base + limit)`. Use `u64::MAX` as an
    /// effectively unbounded limit for native (unsimulated) runs.
    pub fn new(base: VirtAddr, limit: u64) -> Self {
        BumpAllocator {
            base,
            next: 0,
            limit,
            small: None,
        }
    }

    /// Allocator with a split: allocations below `threshold` bytes come
    /// from the `[small_base, small_base + small_limit)` region (intended
    /// to be 4 KB-backed), everything else from the primary (2 MB-backed)
    /// region.
    pub fn with_split(
        base: VirtAddr,
        limit: u64,
        small_base: VirtAddr,
        small_limit: u64,
        threshold: u64,
    ) -> Self {
        BumpAllocator {
            base,
            next: 0,
            limit,
            small: Some(SmallRegion {
                base: small_base,
                next: 0,
                limit: small_limit,
                threshold,
            }),
        }
    }

    /// Unbounded allocator at an arbitrary base — for native runs, where
    /// addresses are only labels.
    pub fn unbounded() -> Self {
        Self::new(VirtAddr(0x1_0000_0000), u64::MAX)
    }

    /// Base of the managed region.
    pub fn base(&self) -> VirtAddr {
        self.base
    }

    /// Bytes handed out so far (including alignment padding).
    pub fn used_bytes(&self) -> u64 {
        self.next
    }

    /// Reserve `bytes`, returning the virtual address of the block.
    ///
    /// # Panics
    /// When the region is exhausted — shared-region sizing is a startup
    /// decision, so running out is a configuration bug, not a runtime
    /// condition to recover from.
    pub fn alloc_bytes(&mut self, bytes: u64) -> VirtAddr {
        let align = align_for(bytes);
        if let Some(sm) = &mut self.small {
            if bytes < sm.threshold {
                let aligned = (sm.next + align - 1) & !(align - 1);
                assert!(
                    aligned + bytes <= sm.limit,
                    "small shared region exhausted: need {bytes} at offset {aligned}, limit {}",
                    sm.limit
                );
                sm.next = aligned + bytes;
                return sm.base.add(aligned);
            }
        }
        let aligned = (self.next + align - 1) & !(align - 1);
        assert!(
            aligned + bytes <= self.limit,
            "shared region exhausted: need {bytes} more bytes at offset {aligned}, limit {}",
            self.limit
        );
        self.next = aligned + bytes;
        self.base.add(aligned)
    }

    /// Bytes handed out from the secondary (small) region.
    pub fn small_used_bytes(&self) -> u64 {
        self.small.as_ref().map_or(0, |s| s.next)
    }

    /// Allocate a zeroed shared array of `len` elements.
    pub fn alloc_vec<T: Word>(&mut self, len: usize) -> ShVec<T> {
        let va = self.alloc_bytes(len as u64 * ELEM_BYTES);
        ShVec::new(len, va)
    }

    /// Allocate a shared array initialised from a function.
    pub fn alloc_vec_from<T: Word>(&mut self, len: usize, f: impl FnMut(usize) -> T) -> ShVec<T> {
        let va = self.alloc_bytes(len as u64 * ELEM_BYTES);
        ShVec::from_fn(len, va, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocations_are_aligned_and_disjoint() {
        let mut a = BumpAllocator::new(VirtAddr(0x1000), 1 << 20);
        let x = a.alloc_bytes(100);
        let y = a.alloc_bytes(8);
        assert_eq!(x.0 % ALLOC_ALIGN, 0);
        assert_eq!(y.0 % ALLOC_ALIGN, 0);
        assert!(y.0 >= x.0 + 100);
    }

    #[test]
    fn vec_allocation_tracks_addresses() {
        let mut a = BumpAllocator::new(VirtAddr(0x1000), 1 << 20);
        let v: ShVec<f64> = a.alloc_vec(16);
        assert_eq!(v.vbase().0 % ALLOC_ALIGN, 0);
        assert_eq!(v.len(), 16);
        let w: ShVec<f64> = a.alloc_vec(16);
        assert!(w.vbase().0 >= v.vbase().0 + 128);
    }

    #[test]
    fn from_fn_initialises() {
        let mut a = BumpAllocator::unbounded();
        let v: ShVec<u64> = a.alloc_vec_from(4, |i| i as u64 * 3);
        assert_eq!(v.to_vec(), vec![0, 3, 6, 9]);
    }

    #[test]
    fn used_bytes_accounts_padding() {
        let mut a = BumpAllocator::new(VirtAddr(0), 1 << 20);
        a.alloc_bytes(1);
        a.alloc_bytes(1);
        assert_eq!(a.used_bytes(), ALLOC_ALIGN + 1);
    }

    #[test]
    #[should_panic(expected = "shared region exhausted")]
    fn exhaustion_panics() {
        let mut a = BumpAllocator::new(VirtAddr(0), 128);
        a.alloc_bytes(64);
        a.alloc_bytes(65);
    }

    #[test]
    fn large_allocations_are_page_aligned() {
        let mut a = BumpAllocator::new(VirtAddr(0x1000), 1 << 22);
        a.alloc_bytes(100); // misalign the cursor
        let big = a.alloc_bytes(8192);
        assert_eq!(big.0 % PAGE_ALIGN, 0);
        let small = a.alloc_bytes(32);
        assert_eq!(small.0 % ALLOC_ALIGN, 0);
    }

    #[test]
    fn split_routes_by_size() {
        let mut a = BumpAllocator::with_split(
            VirtAddr(0x4000_0000),
            1 << 20,
            VirtAddr(0x1000),
            1 << 16,
            4096,
        );
        let big = a.alloc_bytes(8192);
        let small = a.alloc_bytes(64);
        assert_eq!(big, VirtAddr(0x4000_0000));
        assert_eq!(small, VirtAddr(0x1000));
        assert_eq!(a.used_bytes(), 8192);
        assert_eq!(a.small_used_bytes(), 64);
    }

    #[test]
    #[should_panic(expected = "small shared region exhausted")]
    fn small_region_exhaustion_panics() {
        let mut a =
            BumpAllocator::with_split(VirtAddr(0x4000_0000), 1 << 20, VirtAddr(0x1000), 128, 4096);
        a.alloc_bytes(100);
        a.alloc_bytes(100);
    }
}
