//! Mutual exclusion constructs: OpenMP's `critical` and its lock API.
//!
//! Omni implements `#pragma omp critical` and the `omp_*_lock` routines
//! over its shared region; the native engine provides the same contracts
//! over the standard library. In the simulated engine loops execute one
//! quantum at a time on a single OS thread, so these are trivially
//! uncontended there — they exist for the native-engine programming model
//! (examples, benches and any downstream user writing OpenMP-style Rust).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};

/// An OpenMP `critical` section: at most one thread inside at a time.
///
/// ```
/// use lpomp_runtime::{Critical, Schedule, Team};
/// let critical = Critical::new();
/// let mut total = 0u64;
/// {
///     let total_ref = std::sync::Mutex::new(&mut total);
///     let mut team = Team::native(4);
///     team.parallel_for(0..100, Schedule::Static, &|_, r| {
///         // #pragma omp critical
///         let _guard = critical.enter();
///         **total_ref.lock().unwrap() += r.len() as u64;
///     });
/// }
/// assert_eq!(total, 100);
/// ```
#[derive(Debug, Default)]
pub struct Critical {
    mutex: Mutex<()>,
    entries: AtomicU64,
}

impl Critical {
    /// New critical section.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enter the section; the guard releases it on drop.
    pub fn enter(&self) -> MutexGuard<'_, ()> {
        self.entries.fetch_add(1, Ordering::Relaxed);
        // A poisoned `()` mutex carries no state to corrupt; recover it.
        self.mutex.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempt to enter without blocking.
    pub fn try_enter(&self) -> Option<MutexGuard<'_, ()>> {
        match self.mutex.try_lock() {
            Ok(g) => {
                self.entries.fetch_add(1, Ordering::Relaxed);
                Some(g)
            }
            Err(std::sync::TryLockError::Poisoned(p)) => {
                self.entries.fetch_add(1, Ordering::Relaxed);
                Some(p.into_inner())
            }
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// How many times the section has been entered.
    pub fn entries(&self) -> u64 {
        self.entries.load(Ordering::Relaxed)
    }
}

/// The OpenMP lock API (`omp_init_lock` / `set` / `unset` / `test`), for
/// code ported from OpenMP that manages locks explicitly rather than
/// lexically.
///
/// OpenMP locks are *not* lexically scoped — `omp_set_lock` in one
/// function may be released by `omp_unset_lock` in another — so this is a
/// raw flag lock rather than a guard-based mutex.
#[derive(Debug, Default)]
pub struct OmpLock {
    held: AtomicBool,
}

impl OmpLock {
    /// `omp_init_lock`.
    pub fn new() -> Self {
        Self::default()
    }

    /// `omp_set_lock`: blocks until acquired. Pair with [`unset`].
    ///
    /// [`unset`]: OmpLock::unset
    pub fn set(&self) {
        let mut spins = 0u32;
        while self
            .held
            .compare_exchange_weak(false, true, Ordering::Acquire, Ordering::Relaxed)
            .is_err()
        {
            // Bounded spin, then yield: these protect short OpenMP-style
            // critical regions, so contention windows are tiny.
            spins += 1;
            if spins < 64 {
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
    }

    /// `omp_unset_lock`.
    ///
    /// # Safety contract (checked at runtime)
    /// Panics if the lock is not held.
    pub fn unset(&self) {
        assert!(
            self.held.swap(false, Ordering::Release),
            "omp_unset_lock on an unheld lock"
        );
    }

    /// `omp_test_lock`: try to acquire; true on success.
    pub fn test(&self) -> bool {
        self.held
            .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
            .is_ok()
    }

    /// Whether the lock is currently held.
    pub fn is_set(&self) -> bool {
        self.held.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Schedule, Team};
    use std::sync::atomic::AtomicI64;

    #[test]
    fn critical_section_serializes_updates() {
        // A non-atomic read-modify-write protected by the critical
        // section must not lose updates.
        struct Wrap(std::cell::UnsafeCell<i64>);
        // Safety: all access to the cell happens inside the critical
        // section, which provides the exclusion.
        unsafe impl Sync for Wrap {}
        let critical = Critical::new();
        let w = Wrap(std::cell::UnsafeCell::new(0i64));
        let w_ref = &w;
        let mut team = Team::native(4);
        team.parallel_for(0..1000, Schedule::Dynamic(16), &|_, r| {
            for _ in r {
                let _g = critical.enter();
                // Safety: exclusive by the critical section.
                unsafe { *w_ref.0.get() += 1 };
            }
        });
        assert_eq!(unsafe { *w.0.get() }, 1000);
        assert_eq!(critical.entries(), 1000);
    }

    #[test]
    fn try_enter_fails_while_held() {
        let c = Critical::new();
        let g = c.enter();
        assert!(c.try_enter().is_none());
        drop(g);
        assert!(c.try_enter().is_some());
    }

    #[test]
    fn omp_lock_set_unset_test() {
        let l = OmpLock::new();
        assert!(!l.is_set());
        l.set();
        assert!(l.is_set());
        assert!(!l.test());
        l.unset();
        assert!(!l.is_set());
        assert!(l.test());
        l.unset();
    }

    #[test]
    #[should_panic(expected = "unheld lock")]
    fn unset_of_unheld_lock_panics() {
        OmpLock::new().unset();
    }

    #[test]
    fn omp_lock_guards_across_threads() {
        let l = OmpLock::new();
        let counter = AtomicI64::new(0);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..100 {
                        l.set();
                        let v = counter.load(std::sync::atomic::Ordering::Relaxed);
                        std::hint::spin_loop();
                        counter.store(v + 1, std::sync::atomic::Ordering::Relaxed);
                        l.unset();
                    }
                });
            }
        });
        assert_eq!(counter.load(std::sync::atomic::Ordering::Relaxed), 400);
    }
}
